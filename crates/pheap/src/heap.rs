//! The persistent heap front end: `pmalloc`/`pfree` with logged atomicity,
//! sharded for concurrency.
//!
//! The paper's heap is "a modified version of the Hoard memory allocator"
//! (§4.3); Hoard's defining trait is per-thread superblock ownership. The
//! front end realises it with **N shards**: each shard owns a disjoint set
//! of superblocks, its own volatile size-class lists, and its own tornbit
//! RAWL allocator log (preserving the single-producer discipline per log
//! while allowing N concurrent durable allocations). Threads hash to a
//! home shard; when a shard's class lists run dry it steals a fresh
//! superblock from a global pool, and a free of a block owned by another
//! shard (a *remote* free) is routed to — and logged by — the owning
//! shard. Ownership itself is volatile and rebuilt by scavenging at open,
//! exactly like the paper's rebuilt indexes; recovery replays and
//! scavenges all shard logs and superblock ranges in parallel.

use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::time::Instant;

use parking_lot::Mutex;

use mnemosyne_obs::{Counter, Histogram, PaddedAtomicU64, Telemetry, Unit};
use mnemosyne_rawl::{LogError, TornbitLog};
use mnemosyne_region::{PMem, Regions, VAddr};
use mnemosyne_scm::EmulationMode;

use crate::error::HeapError;
use crate::large::LargeAlloc;
use crate::small::{class_of, ShardSmall, SmallLayout, WordWrite};

/// Heap header magic ("PHEAPHD2" — the sharded, multi-log format), stored
/// in the first word of the small region; written last during formatting
/// so a torn format is re-run. The second header word records how many
/// shard logs have ever been created, so a reopen with fewer shards still
/// replays every log. The third header word counts committed large
/// **extension areas** ([`PHeap::grow`]); heaps written before online
/// growth existed read zero there (backing pages are zero-filled), so old
/// images open unchanged.
const HEAP_MAGIC: u64 = u64::from_le_bytes(*b"PHEAPHD2");

/// Hard cap on the shard count (also bounds the `n_logs` header word a
/// recovery will trust).
pub const MAX_SHARDS: usize = 64;

/// Hard cap on extension areas (bounds the header word a recovery will
/// trust, and keeps region-table usage sane).
pub const MAX_EXT_AREAS: u64 = 64;

/// Configuration for [`PHeap::open`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeapConfig {
    /// Prefix for the heap's region names (allows several heaps).
    pub name_prefix: String,
    /// Bytes for the small-object area (superblocks + bitmaps).
    pub small_bytes: u64,
    /// Bytes for the large-object area.
    pub large_bytes: u64,
    /// Allocator-log capacity in words (per shard log).
    pub log_words: u64,
    /// Number of heap shards. `0` means auto: the `MNEMOSYNE_HEAP_SHARDS`
    /// environment variable if set, otherwise the machine's available
    /// parallelism. Clamped to `1..=`[`MAX_SHARDS`].
    pub shards: usize,
}

impl Default for HeapConfig {
    fn default() -> Self {
        HeapConfig {
            name_prefix: "pheap".to_string(),
            small_bytes: 4 << 20,
            large_bytes: 4 << 20,
            log_words: 4096,
            shards: 0,
        }
    }
}

impl HeapConfig {
    /// Config with a distinct name prefix.
    pub fn named(prefix: &str) -> Self {
        HeapConfig {
            name_prefix: prefix.to_string(),
            ..Self::default()
        }
    }

    /// Overrides the area sizes.
    pub fn with_sizes(mut self, small: u64, large: u64) -> Self {
        self.small_bytes = small;
        self.large_bytes = large;
        self
    }

    /// Overrides the shard count (`0` = auto).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    fn resolve_shards(&self) -> usize {
        let n = if self.shards != 0 {
            self.shards
        } else {
            match std::env::var("MNEMOSYNE_HEAP_SHARDS")
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
            {
                Some(n) if n != 0 => n,
                _ => std::thread::available_parallelism()
                    .map(|p| p.get())
                    .unwrap_or(1),
            }
        };
        n.clamp(1, MAX_SHARDS)
    }
}

/// A census of the small area's superblocks, from
/// [`PHeap::small_occupancy`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SmallOccupancy {
    /// Blocks currently allocated across all shards.
    pub live_blocks: u64,
    /// Superblocks owned by some shard.
    pub owned_superblocks: usize,
    /// Free superblocks in the global steal pool.
    pub pooled_superblocks: usize,
    /// Superblocks the small area holds in total.
    pub total_superblocks: usize,
}

/// What one [`PHeap::grow`] call added, for reporting over the admin wire.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GrowStats {
    /// Bytes the new extension area contributes (page-rounded).
    pub grown_bytes: u64,
    /// Total large-area capacity after the grow (base + all extensions).
    pub large_capacity: u64,
}

/// Counters describing heap activity since open.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HeapStats {
    /// Successful `pmalloc` calls.
    pub allocs: u64,
    /// Successful `pfree` calls.
    pub frees: u64,
    /// Allocations served by the superblock allocator.
    pub small_allocs: u64,
    /// Allocations served by the large-object allocator.
    pub large_allocs: u64,
    /// Redo records replayed during the last recovery.
    pub replayed: u64,
    /// Frees routed to a shard other than the calling thread's home.
    pub remote_frees: u64,
    /// Superblocks taken from the global pool (work-stealing).
    pub steals: u64,
}

/// Per-heap stat cells: cache-line-padded atomics bumped outside the shard
/// locks, so [`PHeap::stats`] (and `Debug`) never serialise against
/// allocation.
#[derive(Default)]
struct StatCells {
    allocs: PaddedAtomicU64,
    frees: PaddedAtomicU64,
    small_allocs: PaddedAtomicU64,
    large_allocs: PaddedAtomicU64,
    replayed: PaddedAtomicU64,
    remote_frees: PaddedAtomicU64,
    steals: PaddedAtomicU64,
}

/// `pheap.*` telemetry in the machine's registry, mirroring [`HeapStats`]
/// plus the fallback path, shard contention, and the §6.3.2 scavenge cost
/// that the plain struct does not expose.
struct HeapMetrics {
    allocs: Counter,
    frees: Counter,
    /// Allocations served from Hoard-style superblocks.
    superblock_allocs: Counter,
    large_allocs: Counter,
    /// Small requests that fell back to the large allocator because the
    /// superblock area was exhausted.
    fallback_allocs: Counter,
    replayed: Counter,
    /// Frees whose block is owned by a different shard than the caller's
    /// home shard.
    remote_frees: Counter,
    /// Superblocks stolen from the global free pool.
    steals: Counter,
    /// Shard-lock acquisitions that found the lock already held.
    shard_lock_contended: Counter,
    /// Successful online [`PHeap::grow`] calls.
    grows: Counter,
    /// Bytes of large-area capacity added by online growth.
    grow_bytes: Counter,
    /// Time spent rebuilding volatile indexes at open (§6.3.2); with
    /// parallel scavenge this is the critical-path worker time.
    scavenge_ns: Histogram,
}

impl HeapMetrics {
    fn new(telemetry: &Telemetry) -> HeapMetrics {
        HeapMetrics {
            allocs: telemetry.counter("pheap.allocs", Unit::Count),
            frees: telemetry.counter("pheap.frees", Unit::Count),
            superblock_allocs: telemetry.counter("pheap.superblock_allocs", Unit::Count),
            large_allocs: telemetry.counter("pheap.large_allocs", Unit::Count),
            fallback_allocs: telemetry.counter("pheap.fallback_allocs", Unit::Count),
            replayed: telemetry.counter("pheap.replayed", Unit::Count),
            remote_frees: telemetry.counter("pheap.remote_frees", Unit::Count),
            steals: telemetry.counter("pheap.steals", Unit::Count),
            shard_lock_contended: telemetry.counter("pheap.shard_lock_contended", Unit::Count),
            grows: telemetry.counter("pheap.grows", Unit::Count),
            grow_bytes: telemetry.counter("pheap.grow_bytes", Unit::Bytes),
            scavenge_ns: telemetry.histogram("pheap.scavenge_ns", Unit::Nanoseconds),
        }
    }
}

/// One heap shard: its allocator log (single producer — whoever holds the
/// shard lock) and the volatile view of its owned superblocks.
struct Shard {
    log: TornbitLog,
    small: ShardSmall,
}

/// The large-object allocator with its own log, behind its own lock. The
/// base area plus any committed extension areas ([`PHeap::grow`]) share the
/// one log, preserving its single-producer discipline.
struct LargeShard {
    log: TornbitLog,
    areas: Vec<LargeAlloc>,
}

/// Monotone thread slots: each thread that touches a heap gets the next
/// slot, and `slot % nshards` is its home shard — the same round-robin
/// idiom the telemetry counters use for shard assignment.
static NEXT_THREAD_SLOT: AtomicUsize = AtomicUsize::new(0);
thread_local! {
    static THREAD_SLOT: usize = NEXT_THREAD_SLOT.fetch_add(1, Ordering::Relaxed);
}

/// The sharded persistent heap. `Sync`: operations lock only the involved
/// shard (or the large allocator), which also enforces each allocator
/// log's single-producer discipline.
pub struct PHeap {
    layout: SmallLayout,
    shards: Vec<Mutex<Shard>>,
    /// Owning shard + 1 per superblock; 0 = in the pool (or quarantined).
    /// Transitions owned→pool only under the owning shard's lock, so a
    /// reader that locks the owner and re-checks sees a stable value.
    owner: Vec<AtomicU32>,
    /// Fully empty superblocks, stealable by any shard.
    pool: Mutex<Vec<u32>>,
    large: Mutex<LargeShard>,
    header: VAddr,
    /// Region-name prefix, kept for naming extension areas at [`grow`].
    ///
    /// [`grow`]: PHeap::grow
    name_prefix: String,
    stats: StatCells,
    metrics: HeapMetrics,
}

impl std::fmt::Debug for PHeap {
    /// Lock-free: reads the registry-backed telemetry counters and padded
    /// stat cells, so formatting can never deadlock or serialise against
    /// allocation.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PHeap")
            .field("shards", &self.shards.len())
            .field("stats", &self.stats())
            .field(
                "shard_lock_contended",
                &self.metrics.shard_lock_contended.get(),
            )
            .finish()
    }
}

impl PHeap {
    /// Opens (or creates) the heap described by `config`:
    ///
    /// 1. maps the small and large areas, one allocator log per shard, and
    ///    the large allocator's log;
    /// 2. on first run, formats them and publishes the header magic;
    /// 3. otherwise recovers **all** shard logs in parallel, **replays**
    ///    any committed but unapplied operations, **scavenges** the
    ///    superblock ranges concurrently (§4.3, §6.3.2) and the large
    ///    chain, and rebuilds shard ownership round-robin from the
    ///    persistent superblock metadata.
    ///
    /// The shard count is volatile configuration: a heap written with N
    /// shards reopens fine with any other count — the header records how
    /// many logs have ever been created and every one of them is replayed.
    ///
    /// # Errors
    /// Fails on region exhaustion, log corruption, or a corrupt chunk
    /// chain.
    pub fn open(regions: &Regions, config: HeapConfig) -> Result<PHeap, HeapError> {
        let nshards = config.resolve_shards();
        let pmem = regions.pmem_handle();
        let small_r = regions.pmap(
            &format!("{}.small", config.name_prefix),
            config.small_bytes,
            &pmem,
        )?;
        let large_r = regions.pmap(
            &format!("{}.large", config.name_prefix),
            config.large_bytes,
            &pmem,
        )?;
        let log_bytes = mnemosyne_rawl::LOG_HEADER_BYTES + config.log_words * 8;
        let llog_r = regions.pmap(&format!("{}.llog", config.name_prefix), log_bytes, &pmem)?;

        // First page of the small region: heap header (word 0 = magic,
        // word 1 = number of shard logs ever created, word 2 = number of
        // committed large extension areas).
        let header = small_r.addr;
        let nlogs_addr = header.add(8);
        let exts_addr = header.add(16);
        let small_area = small_r.addr.add(4096);
        let small_len = small_r.len - 4096;
        let layout = SmallLayout::new(small_area, small_len);
        let metrics = HeapMetrics::new(regions.telemetry());
        let stats = StatCells::default();
        let n_sb = layout.superblocks();

        let map_log = |i: usize| -> Result<VAddr, HeapError> {
            let r = regions.pmap(
                &format!("{}.log{}", config.name_prefix, i),
                log_bytes,
                &pmem,
            )?;
            Ok(r.addr)
        };

        if pmem.read_u64(header) != HEAP_MAGIC {
            // Fresh heap: format everything, publish the magic last.
            let mut shards = Vec::with_capacity(nshards);
            for i in 0..nshards {
                let base = map_log(i)?;
                let log = TornbitLog::create(regions.pmem_handle(), base, config.log_words)?;
                shards.push(Mutex::new(Shard {
                    log,
                    small: ShardSmall::new(layout),
                }));
            }
            let llog = TornbitLog::create(regions.pmem_handle(), llog_r.addr, config.log_words)?;
            let mut large = LargeAlloc::new(large_r.addr, large_r.len);
            let writes = large.format_writes();
            Self::apply(llog.pmem(), &writes);
            let hp = llog.pmem();
            hp.store_u64(nlogs_addr, nshards as u64);
            hp.flush(nlogs_addr);
            hp.fence();
            hp.store_u64(header, HEAP_MAGIC);
            hp.flush(header);
            hp.fence();
            return Ok(PHeap {
                layout,
                shards,
                owner: (0..n_sb).map(|_| AtomicU32::new(0)).collect(),
                pool: Mutex::new((0..n_sb).rev().collect()),
                large: Mutex::new(LargeShard {
                    log: llog,
                    areas: vec![large],
                }),
                header,
                name_prefix: config.name_prefix,
                stats,
                metrics,
            });
        }

        // ---- Reopen: parallel replay + parallel scavenge. ----
        let wall = Instant::now();
        let m = pmem.read_u64(nlogs_addr) as usize;
        if m == 0 || m > MAX_SHARDS {
            return Err(HeapError::Corrupt(
                "implausible shard log count in heap header",
            ));
        }
        // Committed large extension areas ([`PHeap::grow`]): every counted
        // area must exist in the region table (Regions::open already mapped
        // it), or the image is corrupt. An *uncounted* leftover from a
        // crashed grow is invisible here and gets re-adopted by the next
        // grow call.
        let n_ext = pmem.read_u64(exts_addr);
        if n_ext > MAX_EXT_AREAS {
            return Err(HeapError::Corrupt(
                "implausible extension-area count in heap header",
            ));
        }
        let mut area_specs: Vec<(VAddr, u64)> = Vec::with_capacity(1 + n_ext as usize);
        area_specs.push((large_r.addr, large_r.len));
        for e in 0..n_ext {
            let r = regions
                .find(&format!("{}.ext{}", config.name_prefix, e))
                .ok_or(HeapError::Corrupt(
                    "committed heap extension area is missing from the region table",
                ))?;
            area_specs.push((r.addr, r.len));
        }
        let total_logs = m.max(nshards);
        let mut log_addrs = Vec::with_capacity(total_logs);
        for i in 0..total_logs {
            log_addrs.push(map_log(i)?);
        }

        // Recover every existing log (all m shard logs + the large log)
        // concurrently, then recover-or-create any logs the wider shard
        // count needs. A log created by a crashed wider boot is recovered,
        // not clobbered.
        let mut parts: Vec<(PMem, VAddr)> = log_addrs[..m]
            .iter()
            .map(|&a| (regions.pmem_handle(), a))
            .collect();
        parts.push((regions.pmem_handle(), llog_r.addr));
        let mut recovered = mnemosyne_rawl::recover_all(parts)?;
        let (mut llog, lrecords) = recovered.pop().expect("large log part");
        for &base in &log_addrs[m..] {
            recovered.push(TornbitLog::open_or_create(
                regions.pmem_handle(),
                base,
                config.log_words,
            )?);
        }
        if total_logs > m {
            // All new logs exist before the count is bumped, so a crash
            // in between leaves a recoverable state either way.
            let hp = llog.pmem();
            hp.store_u64(nlogs_addr, total_logs as u64);
            hp.flush(nlogs_addr);
            hp.fence();
        }

        // Replay committed-but-unapplied operations (redo) on every log.
        let mut replayed = 0u64;
        let mut logs = Vec::with_capacity(recovered.len());
        for (mut log, records) in recovered {
            replayed += Self::replay(&mut log, &records)?;
            logs.push(log);
        }
        replayed += Self::replay(&mut llog, &lrecords)?;
        stats.replayed.store(replayed, Ordering::Relaxed);
        metrics.replayed.add(replayed);

        // Scavenge: split the superblock range over one worker per shard
        // while the large chain walk runs on its own thread; join each
        // handle explicitly so a simulated-crash payload propagates intact.
        let workers = nshards.min(n_sb.max(1) as usize);
        let chunk = n_sb.div_ceil(workers as u32).max(1);
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers as u32 {
            let from = w * chunk;
            let to = (from + chunk).min(n_sb);
            let wp = regions.pmem_handle();
            handles.push(std::thread::spawn(move || {
                let res = layout.scan_range(&wp, from, to);
                (res, wp.accounted_ns())
            }));
        }
        let lp = regions.pmem_handle();
        let large_h = std::thread::spawn(move || {
            let mut areas = Vec::with_capacity(area_specs.len());
            let mut res = Ok(());
            for (base, len) in area_specs {
                let mut a = LargeAlloc::new(base, len);
                match a.scavenge(&lp) {
                    Ok(()) => areas.push(a),
                    Err(e) => {
                        res = Err(e);
                        break;
                    }
                }
            }
            ((areas, res), lp.accounted_ns())
        });
        let joined: Vec<_> = handles.into_iter().map(|h| h.join()).collect();
        let large_joined = large_h.join();
        let mut assigned = Vec::new();
        let mut empties: Vec<u32> = Vec::new();
        let mut critical_ns = 0u64;
        for r in joined {
            match r {
                Ok(((a, e), ns)) => {
                    assigned.extend(a);
                    empties.extend(e);
                    critical_ns = critical_ns.max(ns);
                }
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        let ((areas, large_res), large_ns) = match large_joined {
            Ok(v) => v,
            Err(payload) => std::panic::resume_unwind(payload),
        };
        large_res?;
        critical_ns = critical_ns.max(large_ns);

        // Rebuild volatile ownership: live superblocks round-robin over
        // the shards, empty ones into the stealable pool.
        let owner: Vec<AtomicU32> = (0..n_sb).map(|_| AtomicU32::new(0)).collect();
        let mut shards: Vec<Shard> = logs
            .into_iter()
            .take(nshards)
            .map(|log| Shard {
                log,
                small: ShardSmall::new(layout),
            })
            .collect();
        for (i, (sb, meta)) in assigned.iter().enumerate() {
            let s = i % nshards;
            owner[*sb as usize].store(s as u32 + 1, Ordering::Relaxed);
            shards[s].small.adopt_scavenged(*sb, meta);
        }
        empties.sort_unstable_by(|a, b| b.cmp(a));

        // Attribute the rebuild cost in the emulator's time domain when
        // the virtual clock is on (max over the parallel workers — the
        // critical path), wall time otherwise.
        let ns = if llog.pmem().mode() == EmulationMode::Virtual {
            for s in &shards {
                critical_ns = critical_ns.max(s.log.pmem().accounted_ns());
            }
            critical_ns.max(llog.pmem().accounted_ns())
        } else {
            wall.elapsed().as_nanos() as u64
        };
        metrics.scavenge_ns.record(ns);

        Ok(PHeap {
            layout,
            shards: shards.into_iter().map(Mutex::new).collect(),
            owner,
            pool: Mutex::new(empties),
            large: Mutex::new(LargeShard { log: llog, areas }),
            header,
            name_prefix: config.name_prefix,
            stats,
            metrics,
        })
    }

    /// Validates and redoes one log's recovered records, then truncates
    /// the log. Records are checksum-verified by recovery, so a
    /// structurally bad one (odd length, unmapped target) means corruption
    /// got past the media-level checks — refuse to replay rather than
    /// panic or scribble on the wrong words.
    fn replay(log: &mut TornbitLog, records: &[Vec<u64>]) -> Result<u64, HeapError> {
        let mut n = 0u64;
        for rec in records {
            if rec.len() % 2 != 0 {
                return Err(HeapError::Corrupt("malformed allocator redo record"));
            }
            let pairs: Vec<WordWrite> = rec.chunks_exact(2).map(|c| (VAddr(c[0]), c[1])).collect();
            for &(addr, _) in &pairs {
                if log.pmem().try_translate(addr).is_err() {
                    return Err(HeapError::Corrupt(
                        "allocator redo record targets an unmapped address",
                    ));
                }
            }
            Self::apply(log.pmem(), &pairs);
            n += 1;
        }
        log.truncate_all();
        Ok(n)
    }

    /// Durably applies a list of word writes: store each, flush each line,
    /// one fence.
    fn apply(pmem: &PMem, writes: &[WordWrite]) {
        for &(addr, val) in writes {
            pmem.store_u64(addr, val);
        }
        for &(addr, _) in writes {
            pmem.flush(addr);
        }
        pmem.fence();
    }

    /// Logs then applies an operation's writes on one shard's log — the
    /// §4.3 atomicity protocol (log flush is the commit point; recovery
    /// redoes the rest). Writes of concurrent operations on different
    /// shards touch disjoint words (the shard's own bitmap/meta words plus
    /// distinct caller cells), so per-shard redo logs never race.
    fn commit(log: &mut TornbitLog, writes: &[WordWrite]) -> Result<(), HeapError> {
        let mut record = Vec::with_capacity(writes.len() * 2);
        for &(a, v) in writes {
            record.push(a.0);
            record.push(v);
        }
        match log.append(&record) {
            Ok(()) => {}
            Err(LogError::Full { .. }) => {
                // Synchronous truncation: prior ops are fully applied.
                log.truncate_all();
                log.append(&record)?;
            }
            Err(e) => return Err(e.into()),
        }
        log.flush();
        Self::apply(log.pmem(), writes);
        log.truncate_all();
        Ok(())
    }

    /// Checkpoint sweep: truncates every allocator log (per-shard and
    /// large) that still holds records, returning the words reclaimed.
    ///
    /// Allocator operations already truncate their own log after applying
    /// each op, so the logs are almost always empty and this is nearly
    /// free — but a checkpoint wants a *bound*, not a likelihood, on the
    /// outstanding-log bytes a reboot must replay, and this provides it.
    ///
    /// Busy shards are skipped rather than waited on (`try_lock`): a held
    /// lock means an allocator op is in flight, and that op truncates its
    /// own log before releasing the lock, so the bound holds without this
    /// sweep touching the shard. Crucially, allocations run inside
    /// transactions that hold STM word locks — a background checkpointer
    /// that *blocked* allocation here (for even a scheduling quantum)
    /// would stall the owner and cascade every concurrent transaction
    /// into conflict aborts. Every record truncated here was fully
    /// applied (the op holds the shard lock from append through
    /// truncate), so dropping it cannot lose state.
    pub fn checkpoint(&self) -> u64 {
        let mut words = 0u64;
        for shard in &self.shards {
            let Some(mut g) = shard.try_lock() else {
                continue;
            };
            let live = g.log.len_words();
            if live > 0 {
                g.log.truncate_all();
                words += live;
            }
        }
        if let Some(mut lg) = self.large.try_lock() {
            let live = lg.log.len_words();
            if live > 0 {
                lg.log.truncate_all();
                words += live;
            }
        }
        words
    }

    /// Grows the large-object area online by mapping a fresh **extension
    /// area** of (at least) `bytes` bytes — no restart, no data movement.
    ///
    /// Growth is atomic against crashes with a single durable word as the
    /// commit point:
    ///
    /// 1. map a region named `{prefix}.ext{E}` where `E` is the committed
    ///    extension count in header word 2 (a leftover region from a
    ///    previously interrupted grow is re-adopted, not leaked — the
    ///    region intention log GCs a crash *inside* `pmap` itself);
    /// 2. durably format it as one free chunk;
    /// 3. durably bump header word 2 — **the commit point**. A crash
    ///    before the bump recovers to the old capacity (the uncounted
    ///    region is invisible and re-adopted later); a crash after it
    ///    recovers to the new capacity.
    ///
    /// The large lock is held throughout, so concurrent large allocations
    /// serialise with the grow; small-path allocations are unaffected.
    ///
    /// # Errors
    /// [`HeapError::OutOfMemory`] when [`MAX_EXT_AREAS`] extensions already
    /// exist, or a region-layer error if the address space or backing
    /// store is exhausted.
    pub fn grow(&self, regions: &Regions, bytes: u64) -> Result<GrowStats, HeapError> {
        let pmem = regions.pmem_handle();
        let mut guard = self.large.lock();
        let exts_addr = self.header.add(16);
        let e = pmem.read_u64(exts_addr);
        if e >= MAX_EXT_AREAS {
            return Err(HeapError::OutOfMemory { requested: bytes });
        }
        let name = format!("{}.ext{}", self.name_prefix, e);
        let region = match regions.find(&name) {
            Some(r) => r, // re-adopt the leftover of an interrupted grow
            None => regions.pmap(&name, bytes, &pmem)?,
        };
        let mut area = LargeAlloc::new(region.addr, region.len);
        let writes = area.format_writes();
        Self::apply(&pmem, &writes);
        // Commit point: the extension only counts once this word lands.
        pmem.store_u64(exts_addr, e + 1);
        pmem.flush(exts_addr);
        pmem.fence();
        guard.areas.push(area);
        self.metrics.grows.inc();
        self.metrics.grow_bytes.add(region.len);
        Ok(GrowStats {
            grown_bytes: region.len,
            large_capacity: guard.areas.iter().map(|a| a.capacity()).sum(),
        })
    }

    /// Total large-area capacity in bytes (base + committed extensions).
    pub fn large_capacity(&self) -> u64 {
        self.large.lock().areas.iter().map(|a| a.capacity()).sum()
    }

    /// Words currently live across all allocator logs (appended, not yet
    /// truncated) — the heap's contribution to the outstanding-log bound.
    pub fn outstanding_log_words(&self) -> u64 {
        let mut words: u64 = self.shards.iter().map(|s| s.lock().log.len_words()).sum();
        words += self.large.lock().log.len_words();
        words
    }

    /// The shard index this thread's allocations map to (diagnostics and
    /// benchmarks): threads are assigned monotone slots, taken modulo the
    /// shard count.
    pub fn home_shard(&self) -> usize {
        THREAD_SLOT.with(|s| s % self.shards.len())
    }

    /// Number of shards this heap was opened with.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Busy nanoseconds accounted to each shard's allocator-log
    /// persistent-memory handle. Under the emulator's virtual clock this
    /// is the per-shard serial-resource time, which the `allocscale`
    /// bench uses to compute machine-independent throughput.
    pub fn shard_busy_ns(&self) -> Vec<u64> {
        self.shards
            .iter()
            .map(|s| s.lock().log.pmem().accounted_ns())
            .collect()
    }

    /// A point-in-time census of the small area: live blocks, and where
    /// every superblock currently lives (shard-owned vs. pooled). Tests
    /// use this to prove churn leaks nothing; with all blocks freed,
    /// `owned + pooled` must equal `total` and `live_blocks` must be 0.
    pub fn small_occupancy(&self) -> SmallOccupancy {
        let mut live_blocks = 0;
        let mut owned = 0;
        for shard in &self.shards {
            let g = shard.lock();
            live_blocks += g.small.live_blocks();
            owned += g.small.owned_superblocks();
        }
        SmallOccupancy {
            live_blocks,
            owned_superblocks: owned,
            pooled_superblocks: self.pool.lock().len(),
            total_superblocks: self.layout.superblocks() as usize,
        }
    }

    fn lock_shard(&self, i: usize) -> parking_lot::MutexGuard<'_, Shard> {
        if let Some(g) = self.shards[i].try_lock() {
            return g;
        }
        self.metrics.shard_lock_contended.inc();
        self.shards[i].lock()
    }

    /// Pops a free superblock from the global pool (work-stealing).
    fn steal_superblock(&self) -> Option<u32> {
        let sb = self.pool.lock().pop()?;
        self.stats.steals.fetch_add(1, Ordering::Relaxed);
        self.metrics.steals.inc();
        Some(sb)
    }

    fn alloc_impl(&self, size: u64, cell: Option<VAddr>) -> Result<VAddr, HeapError> {
        if let Some(class) = class_of(size) {
            let h = self.home_shard();
            let mut guard = self.lock_shard(h);
            let shard = &mut *guard;
            let mut writes: Vec<WordWrite> = Vec::with_capacity(12);
            let addr = match shard.small.alloc(class, &mut writes) {
                Some(a) => Some(a),
                None => self.steal_superblock().map(|sb| {
                    self.owner[sb as usize].store(h as u32 + 1, Ordering::Release);
                    shard.small.adopt_fresh_and_alloc(sb, class, &mut writes)
                }),
            };
            if let Some(a) = addr {
                if let Some(c) = cell {
                    writes.push((c, a.0));
                }
                Self::commit(&mut shard.log, &writes)?;
                self.stats.small_allocs.fetch_add(1, Ordering::Relaxed);
                self.metrics.superblock_allocs.inc();
                self.stats.allocs.fetch_add(1, Ordering::Relaxed);
                self.metrics.allocs.inc();
                return Ok(a);
            }
            // Small area exhausted: fall back to the large allocator.
            drop(guard);
            self.metrics.fallback_allocs.inc();
        }
        let mut guard = self.large.lock();
        let LargeShard { log, areas } = &mut *guard;
        let mut writes: Vec<WordWrite> = Vec::with_capacity(12);
        // First fit across the base area and any extensions. An area's
        // `alloc` pushes no writes before it finds a fitting chunk, so
        // trying the next area after a miss is safe.
        let a = areas
            .iter_mut()
            .find_map(|area| area.alloc(size, log.pmem(), &mut writes))
            .ok_or(HeapError::OutOfMemory { requested: size })?;
        if let Some(c) = cell {
            writes.push((c, a.0));
        }
        Self::commit(log, &writes)?;
        if class_of(size).is_none() {
            self.stats.large_allocs.fetch_add(1, Ordering::Relaxed);
            self.metrics.large_allocs.inc();
        }
        self.stats.allocs.fetch_add(1, Ordering::Relaxed);
        self.metrics.allocs.inc();
        Ok(a)
    }

    /// Frees a small block, routing to the owning shard's log. `cell`, if
    /// given, is nullified in the same atomic operation. Returns whether
    /// the free committed on a shard other than the caller's home.
    fn free_small(&self, addr: VAddr, cell: Option<VAddr>) -> Result<(), HeapError> {
        let home = self.home_shard();
        let sb = self.layout.sb_of(addr) as usize;
        let mut idx = home;
        let mut guard = self.lock_shard(idx);
        loop {
            match self.owner[sb].load(Ordering::Acquire) {
                0 => return Err(HeapError::BadPointer(addr)),
                o if (o - 1) as usize == idx => break,
                o => {
                    // Remote free: move to the owning shard. Ownership can
                    // only transition away under that shard's lock, so one
                    // re-check under the new lock suffices per hop.
                    drop(guard);
                    idx = (o - 1) as usize;
                    guard = self.lock_shard(idx);
                }
            }
        }
        let shard = &mut *guard;
        let mut writes: Vec<WordWrite> = Vec::with_capacity(12);
        let released = shard.small.free(addr, &mut writes)?;
        if let Some(c) = cell {
            writes.push((c, 0));
        }
        Self::commit(&mut shard.log, &writes)?;
        if let Some(sb) = released {
            // Fully empty: back to the stealable pool (owner cleared while
            // the shard lock is still held, then published).
            self.owner[sb as usize].store(0, Ordering::Release);
            self.pool.lock().push(sb);
        }
        drop(guard);
        if idx != home {
            self.stats.remote_frees.fetch_add(1, Ordering::Relaxed);
            self.metrics.remote_frees.inc();
        }
        Ok(())
    }

    fn free_large(&self, addr: VAddr, cell: Option<VAddr>) -> Result<(), HeapError> {
        let mut guard = self.large.lock();
        let LargeShard { log, areas } = &mut *guard;
        let area = areas
            .iter_mut()
            .find(|a| a.contains(addr))
            .ok_or(HeapError::BadPointer(addr))?;
        let mut writes: Vec<WordWrite> = Vec::with_capacity(12);
        area.free(addr, log.pmem(), &mut writes)?;
        if let Some(c) = cell {
            writes.push((c, 0));
        }
        Self::commit(log, &writes)
    }

    /// Allocates `size` bytes of persistent memory and durably stores the
    /// block address into the persistent pointer `cell` — the paper's
    /// `pmalloc(sz, ptr)`. The cell write is part of the same atomic
    /// operation, so a crash can never strand the block (§3.4).
    ///
    /// ```
    /// # use mnemosyne_scm::{ScmSim, ScmConfig};
    /// # use mnemosyne_region::{RegionManager, Regions};
    /// # use mnemosyne_pheap::{PHeap, HeapConfig};
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// # let dir = std::env::temp_dir().join(format!("pheap-doc-malloc-{}", std::process::id()));
    /// # std::fs::create_dir_all(&dir)?;
    /// # let sim = ScmSim::new(ScmConfig::for_testing(16 << 20));
    /// # let mgr = RegionManager::boot(&sim, &dir)?;
    /// # let (regions, pmem) = Regions::open(&mgr, 1 << 16)?;
    /// # let heap = PHeap::open(&regions, HeapConfig::default())?;
    /// // `cell` is itself persistent: the heap commits "cell -> block"
    /// // in one atomic step, so the block is always reachable.
    /// let (cell, _) = regions.static_area();
    /// let block = heap.pmalloc(64, cell)?;
    /// assert_eq!(pmem.read_u64(cell), block.0);
    /// # std::fs::remove_dir_all(&dir).ok();
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    /// Fails if the cell is not a persistent word-aligned address or the
    /// heap is exhausted.
    pub fn pmalloc(&self, size: u64, cell: VAddr) -> Result<VAddr, HeapError> {
        if !cell.is_persistent() || !cell.is_word_aligned() {
            return Err(HeapError::VolatileCell(cell));
        }
        self.alloc_impl(size, Some(cell))
    }

    /// Frees the block referenced by the persistent pointer `cell` and
    /// nullifies the cell — the paper's `pfree(ptr)`: "to ensure that the
    /// persistent pointer does not continue to point to the deallocated
    /// chunk if the system fails just after a deallocation".
    ///
    /// ```
    /// # use mnemosyne_scm::{ScmSim, ScmConfig};
    /// # use mnemosyne_region::{RegionManager, Regions};
    /// # use mnemosyne_pheap::{PHeap, HeapConfig, HeapError};
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// # let dir = std::env::temp_dir().join(format!("pheap-doc-free-{}", std::process::id()));
    /// # std::fs::create_dir_all(&dir)?;
    /// # let sim = ScmSim::new(ScmConfig::for_testing(16 << 20));
    /// # let mgr = RegionManager::boot(&sim, &dir)?;
    /// # let (regions, pmem) = Regions::open(&mgr, 1 << 16)?;
    /// # let heap = PHeap::open(&regions, HeapConfig::default())?;
    /// # let (cell, _) = regions.static_area();
    /// let _block = heap.pmalloc(64, cell)?;
    /// heap.pfree(cell)?;
    /// assert_eq!(pmem.read_u64(cell), 0); // cell nullified atomically
    /// // Freeing through a null cell is a typed error, not UB.
    /// assert!(matches!(heap.pfree(cell), Err(HeapError::BadPointer(_))));
    /// # std::fs::remove_dir_all(&dir).ok();
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    /// Fails if the cell does not reference a live heap block.
    pub fn pfree(&self, cell: VAddr) -> Result<(), HeapError> {
        if !cell.is_persistent() || !cell.is_word_aligned() {
            return Err(HeapError::VolatileCell(cell));
        }
        // Read the cell through the home shard's handle (no lock needed
        // for the read itself; the guard is dropped before routing).
        let addr = {
            let guard = self.lock_shard(self.home_shard());
            VAddr(guard.log.pmem().read_u64(cell))
        };
        if addr.is_null() {
            return Err(HeapError::BadPointer(addr));
        }
        if self.layout.contains(addr) {
            self.free_small(addr, Some(cell))?;
        } else {
            self.free_large(addr, Some(cell))?;
        }
        self.stats.frees.fetch_add(1, Ordering::Relaxed);
        self.metrics.frees.inc();
        Ok(())
    }

    /// Frees a block by address (for callers that manage their own pointer
    /// durability, e.g. transactional data structures whose pointer writes
    /// are already logged by the transaction system).
    ///
    /// # Errors
    /// Fails if `addr` is not a live heap block.
    pub fn pfree_addr(&self, addr: VAddr) -> Result<(), HeapError> {
        if self.layout.contains(addr) {
            self.free_small(addr, None)?;
        } else {
            self.free_large(addr, None)?;
        }
        self.stats.frees.fetch_add(1, Ordering::Relaxed);
        self.metrics.frees.inc();
        Ok(())
    }

    /// Allocates without a destination cell. The caller **must** make a
    /// persistent pointer to the block durable itself (e.g. via a durable
    /// transaction), or the block leaks on a crash — this is the hazard
    /// §3.1 describes for pointers kept in volatile memory.
    ///
    /// # Errors
    /// Fails if the heap is exhausted.
    pub fn pmalloc_unanchored(&self, size: u64) -> Result<VAddr, HeapError> {
        self.alloc_impl(size, None)
    }

    /// Usable size of a live allocation, if `addr` is one.
    pub fn usable_size(&self, addr: VAddr) -> Option<u64> {
        if self.layout.contains(addr) {
            let sb = self.layout.sb_of(addr) as usize;
            loop {
                match self.owner[sb].load(Ordering::Acquire) {
                    0 => return None,
                    o => {
                        let guard = self.lock_shard((o - 1) as usize);
                        if self.owner[sb].load(Ordering::Acquire) == o {
                            return guard.small.usable_size(addr);
                        }
                        // Ownership moved while we were locking; retry.
                    }
                }
            }
        } else {
            let guard = self.large.lock();
            guard
                .areas
                .iter()
                .find(|a| a.contains(addr))
                .and_then(|a| a.usable_size(guard.log.pmem(), addr))
        }
    }

    /// Activity counters (lock-free reads of the padded stat cells).
    pub fn stats(&self) -> HeapStats {
        HeapStats {
            allocs: self.stats.allocs.load(Ordering::Relaxed),
            frees: self.stats.frees.load(Ordering::Relaxed),
            small_allocs: self.stats.small_allocs.load(Ordering::Relaxed),
            large_allocs: self.stats.large_allocs.load(Ordering::Relaxed),
            replayed: self.stats.replayed.load(Ordering::Relaxed),
            remote_frees: self.stats.remote_frees.load(Ordering::Relaxed),
            steals: self.stats.steals.load(Ordering::Relaxed),
        }
    }

    /// Address of the heap header (diagnostics).
    pub fn header_addr(&self) -> VAddr {
        self.header
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnemosyne_region::RegionManager;
    use mnemosyne_scm::{CrashPolicy, ScmConfig, ScmSim};
    use std::fs;
    use std::path::PathBuf;

    struct Env {
        sim: ScmSim,
        dir: PathBuf,
    }

    impl Drop for Env {
        fn drop(&mut self) {
            fs::remove_dir_all(&self.dir).ok();
        }
    }

    fn setup() -> (Env, Regions, PMem) {
        let dir = std::env::temp_dir().join(format!(
            "pheap-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        fs::remove_dir_all(&dir).ok();
        fs::create_dir_all(&dir).unwrap();
        let sim = ScmSim::new(ScmConfig::for_testing(32 << 20));
        let mgr = RegionManager::boot(&sim, &dir).unwrap();
        let (regions, pmem) = Regions::open(&mgr, 1 << 16).unwrap();
        (Env { sim, dir }, regions, pmem)
    }

    fn small_heap() -> HeapConfig {
        HeapConfig::default().with_sizes(1 << 20, 1 << 20)
    }

    #[test]
    fn alloc_write_free_roundtrip() {
        let (_env, regions, pmem) = setup();
        let heap = PHeap::open(&regions, small_heap()).unwrap();
        let (cell, _) = regions.static_area();
        let a = heap.pmalloc(100, cell).unwrap();
        assert_eq!(pmem.read_u64(cell), a.0);
        assert_eq!(heap.usable_size(a), Some(128));
        pmem.store(a, &[0xaa; 100]);
        heap.pfree(cell).unwrap();
        assert_eq!(pmem.read_u64(cell), 0, "pfree nullifies the cell");
        assert_eq!(heap.usable_size(a), None);
    }

    #[test]
    fn large_allocation_path() {
        let (_env, regions, pmem) = setup();
        let heap = PHeap::open(&regions, small_heap()).unwrap();
        let (cell, _) = regions.static_area();
        let a = heap.pmalloc(100_000, cell).unwrap();
        assert!(heap.usable_size(a).unwrap() >= 100_000);
        pmem.store(a, &[1; 1000]);
        heap.pfree(cell).unwrap();
        // Free space coalesces back to one chunk.
        let b = heap.pmalloc(100_000, cell).unwrap();
        assert_eq!(a, b, "after free+coalesce the same chunk is reused");
        heap.pfree(cell).unwrap();
        assert_eq!(heap.stats().large_allocs, 2);
    }

    #[test]
    fn allocations_persist_across_reopen() {
        let (_env, regions, pmem) = setup();
        let (cell, _) = regions.static_area();
        let a = {
            let heap = PHeap::open(&regions, small_heap()).unwrap();
            let a = heap.pmalloc(64, cell).unwrap();
            pmem.store_u64(a, 777);
            pmem.flush(a);
            pmem.fence();
            a
        };
        // "Memory can be allocated during one invocation and freed during
        // the next."
        let heap2 = PHeap::open(&regions, small_heap()).unwrap();
        assert_eq!(heap2.usable_size(a), Some(64));
        assert_eq!(pmem.read_u64(a), 777);
        heap2.pfree(cell).unwrap();
    }

    #[test]
    fn reopen_with_different_shard_counts() {
        let (_env, regions, pmem) = setup();
        let (cell_area, _) = regions.static_area();
        let mut addrs = Vec::new();
        {
            let heap = PHeap::open(&regions, small_heap().with_shards(4)).unwrap();
            assert_eq!(heap.shard_count(), 4);
            for i in 0..40u64 {
                let cell = cell_area.add(i * 8);
                addrs.push(heap.pmalloc(48, cell).unwrap());
            }
        }
        // Narrower reopen: all 4 logs replayed, blocks distributed over 2
        // shards.
        {
            let heap = PHeap::open(&regions, small_heap().with_shards(2)).unwrap();
            assert_eq!(heap.shard_count(), 2);
            for &a in &addrs {
                assert_eq!(heap.usable_size(a), Some(64));
            }
        }
        // Wider reopen (non-power-of-two): new logs are created and the
        // header's log count is bumped durably.
        let heap = PHeap::open(&regions, small_heap().with_shards(7)).unwrap();
        assert_eq!(heap.shard_count(), 7);
        for (i, &a) in addrs.iter().enumerate() {
            assert_eq!(heap.usable_size(a), Some(64), "block {i} lost");
            assert_eq!(pmem.read_u64(cell_area.add(i as u64 * 8)), a.0);
        }
        for i in 0..addrs.len() as u64 {
            heap.pfree(cell_area.add(i * 8)).unwrap();
        }
    }

    #[test]
    fn scavenge_after_crash_sees_allocations() {
        let (env, regions, pmem) = setup();
        let (cell_area, _) = regions.static_area();
        let mut addrs = Vec::new();
        {
            let heap = PHeap::open(&regions, small_heap()).unwrap();
            for i in 0..50u64 {
                let cell = cell_area.add(i * 8);
                addrs.push(heap.pmalloc(24, cell).unwrap());
            }
        }
        env.sim.crash(CrashPolicy::DropAll);
        let heap2 = PHeap::open(&regions, small_heap()).unwrap();
        // Every allocation is still live and distinct; new allocations
        // do not collide.
        let cell = cell_area.add(1000 * 8);
        for _ in 0..50 {
            let fresh = heap2.pmalloc(24, cell).unwrap();
            assert!(!addrs.contains(&fresh), "allocator reused a live block");
            assert_eq!(pmem.read_u64(cell), fresh.0);
        }
        for (i, &a) in addrs.iter().enumerate() {
            assert_eq!(heap2.usable_size(a), Some(32), "block {i} lost");
        }
    }

    #[test]
    fn crash_between_log_and_apply_is_replayed() {
        let (env, regions, pmem) = setup();
        let (cell, _) = regions.static_area();
        // We cannot stop PHeap mid-operation from outside, so emulate the
        // window: allocate, then crash with a policy that keeps *only*
        // fenced data (DropAll drops cached-but-unflushed stores). Since
        // commit flushes everything before returning, instead verify
        // the replay path by checking stats on a recovery after a crash
        // right at the end of an op (log truncated, nothing to replay).
        let heap = PHeap::open(&regions, small_heap()).unwrap();
        let a = heap.pmalloc(64, cell).unwrap();
        env.sim.crash(CrashPolicy::DropAll);
        let heap2 = PHeap::open(&regions, small_heap()).unwrap();
        assert_eq!(heap2.usable_size(a), Some(64));
        assert_eq!(pmem.read_u64(cell), a.0);
    }

    #[test]
    fn double_free_rejected() {
        let (_env, regions, _pmem) = setup();
        let heap = PHeap::open(&regions, small_heap()).unwrap();
        let (cell, _) = regions.static_area();
        let a = heap.pmalloc(64, cell).unwrap();
        heap.pfree(cell).unwrap();
        // Cell is now null.
        assert!(matches!(heap.pfree(cell), Err(HeapError::BadPointer(_))));
        assert!(matches!(heap.pfree_addr(a), Err(HeapError::BadPointer(_))));
    }

    #[test]
    fn volatile_cell_rejected() {
        let (_env, regions, _pmem) = setup();
        let heap = PHeap::open(&regions, small_heap()).unwrap();
        assert!(matches!(
            heap.pmalloc(64, VAddr(1234)),
            Err(HeapError::VolatileCell(_))
        ));
    }

    #[test]
    fn out_of_memory_reported() {
        let (_env, regions, _pmem) = setup();
        let heap = PHeap::open(&regions, small_heap()).unwrap();
        let (cell, _) = regions.static_area();
        assert!(matches!(
            heap.pmalloc(10 << 20, cell),
            Err(HeapError::OutOfMemory { .. })
        ));
    }

    #[test]
    fn many_sizes_and_interleaved_frees() {
        let (_env, regions, _pmem) = setup();
        let heap = PHeap::open(&regions, small_heap()).unwrap();
        let (area, _) = regions.static_area();
        let sizes = [8u64, 13, 64, 100, 256, 1000, 4096, 5000, 20_000];
        let mut cells = Vec::new();
        for round in 0..3u64 {
            for (i, &sz) in sizes.iter().enumerate() {
                let cell = area.add((round * 100 + i as u64) * 8);
                heap.pmalloc(sz, cell).unwrap();
                cells.push(cell);
            }
            // Free every other allocation.
            let mut i = 0;
            cells.retain(|&c| {
                i += 1;
                if i % 2 == 0 {
                    heap.pfree(c).unwrap();
                    false
                } else {
                    true
                }
            });
        }
        for c in cells {
            heap.pfree(c).unwrap();
        }
        let st = heap.stats();
        assert_eq!(st.allocs, st.frees);
    }

    #[test]
    fn unanchored_alloc_then_manual_free() {
        let (_env, regions, _pmem) = setup();
        let heap = PHeap::open(&regions, small_heap()).unwrap();
        let a = heap.pmalloc_unanchored(128).unwrap();
        assert_eq!(heap.usable_size(a), Some(128));
        heap.pfree_addr(a).unwrap();
        assert_eq!(heap.usable_size(a), None);
    }

    #[test]
    fn first_small_alloc_steals_from_pool() {
        let (_env, regions, _pmem) = setup();
        let heap = PHeap::open(&regions, small_heap().with_shards(1)).unwrap();
        let (cell, _) = regions.static_area();
        heap.pmalloc(64, cell).unwrap();
        // The shard owned nothing, so its first superblock came from the
        // global pool.
        assert_eq!(heap.stats().steals, 1);
    }

    #[test]
    fn remote_free_routed_to_owning_shard() {
        let (_env, regions, _pmem) = setup();
        let heap = std::sync::Arc::new(PHeap::open(&regions, small_heap().with_shards(2)).unwrap());
        let (area, _) = regions.static_area();
        let owner_home = heap.home_shard();
        let cell = area;
        let a = heap.pmalloc(64, cell).unwrap();
        // Thread slots are monotone, so two spawned threads land on both
        // shards; the one whose home differs performs the remote free.
        let mut freed = false;
        for _ in 0..2 {
            let heap2 = std::sync::Arc::clone(&heap);
            let did = std::thread::spawn(move || {
                if heap2.home_shard() != owner_home {
                    heap2.pfree(cell).unwrap();
                    true
                } else {
                    false
                }
            })
            .join()
            .unwrap();
            if did {
                freed = true;
                break;
            }
        }
        assert!(freed, "one of two consecutive threads must map remotely");
        assert_eq!(heap.stats().remote_frees, 1);
        assert_eq!(heap.usable_size(a), None);
    }

    #[test]
    fn concurrent_allocations_distinct() {
        let (_env, regions, _pmem) = setup();
        let heap = std::sync::Arc::new(PHeap::open(&regions, small_heap().with_shards(4)).unwrap());
        let (area, _) = regions.static_area();
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let heap = std::sync::Arc::clone(&heap);
            handles.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                for i in 0..100u64 {
                    let cell = area.add((t * 100 + i) * 8);
                    got.push(heap.pmalloc(40, cell).unwrap());
                }
                got
            }));
        }
        let mut all: Vec<VAddr> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        let n = all.len();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), n, "concurrent pmalloc returned duplicates");
    }

    #[test]
    fn concurrent_mixed_alloc_free_across_shards() {
        let (_env, regions, _pmem) = setup();
        let heap = std::sync::Arc::new(PHeap::open(&regions, small_heap().with_shards(3)).unwrap());
        let (area, _) = regions.static_area();
        let mut handles = Vec::new();
        for t in 0..3u64 {
            let heap = std::sync::Arc::clone(&heap);
            handles.push(std::thread::spawn(move || {
                for i in 0..50u64 {
                    let cell = area.add((t * 50 + i) * 8);
                    heap.pmalloc(32, cell).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // Free everything from the main thread: most frees are remote.
        for i in 0..150u64 {
            heap.pfree(area.add(i * 8)).unwrap();
        }
        let st = heap.stats();
        assert_eq!(st.allocs, 150);
        assert_eq!(st.frees, 150);
    }

    #[test]
    fn grow_serves_allocations_beyond_original_capacity() {
        let (_env, regions, _pmem) = setup();
        let heap = PHeap::open(&regions, small_heap()).unwrap();
        let (cell, _) = regions.static_area();
        // Exhaust the 1 MB large area, then grow and retry.
        assert!(matches!(
            heap.pmalloc(3 << 20, cell),
            Err(HeapError::OutOfMemory { .. })
        ));
        let st = heap.grow(&regions, 4 << 20).unwrap();
        assert!(st.grown_bytes >= 4 << 20);
        assert_eq!(st.large_capacity, heap.large_capacity());
        let a = heap.pmalloc(3 << 20, cell).unwrap();
        assert!(heap.usable_size(a).unwrap() >= 3 << 20);
        heap.pfree(cell).unwrap();
    }

    #[test]
    fn grown_capacity_and_blocks_survive_reopen_and_crash() {
        let (env, regions, pmem) = setup();
        let (cell, _) = regions.static_area();
        let (a, cap) = {
            let heap = PHeap::open(&regions, small_heap()).unwrap();
            heap.grow(&regions, 2 << 20).unwrap();
            let a = heap.pmalloc(1_500_000, cell).unwrap();
            pmem.store_u64(a, 42);
            pmem.flush(a);
            pmem.fence();
            (a, heap.large_capacity())
        };
        env.sim.crash(CrashPolicy::DropAll);
        let heap2 = PHeap::open(&regions, small_heap()).unwrap();
        assert_eq!(heap2.large_capacity(), cap, "extension lost across crash");
        assert!(heap2.usable_size(a).unwrap() >= 1_500_000);
        assert_eq!(pmem.read_u64(a), 42);
        heap2.pfree(cell).unwrap();
    }

    #[test]
    fn interrupted_grow_leftover_is_readopted() {
        let (_env, regions, _pmem) = setup();
        let heap = PHeap::open(&regions, small_heap()).unwrap();
        // Simulate a crash after the region was mapped but before the
        // header commit: the region exists, the count still reads 0.
        let pm = regions.pmem_handle();
        let leftover = regions.pmap("pheap.ext0", 1 << 20, &pm).unwrap();
        let before = heap.large_capacity();
        let st = heap.grow(&regions, 8 << 20).unwrap();
        // The leftover (1 MB) is adopted as-is; the requested size is
        // irrelevant once a prior attempt already reserved the name.
        assert_eq!(st.grown_bytes, leftover.len);
        assert_eq!(heap.large_capacity(), before + leftover.len);
    }

    #[test]
    fn debug_format_is_lock_free() {
        let (_env, regions, _pmem) = setup();
        let heap = PHeap::open(&regions, small_heap().with_shards(2)).unwrap();
        // Hold every lock the heap has; Debug must still complete.
        let _g0 = heap.shards[0].lock();
        let _g1 = heap.shards[1].lock();
        let _gl = heap.large.lock();
        let _gp = heap.pool.lock();
        let s = format!("{heap:?}");
        assert!(s.contains("PHeap"), "{s}");
    }
}
