//! The persistent heap front end: `pmalloc`/`pfree` with logged atomicity.

use std::time::Instant;

use parking_lot::Mutex;

use mnemosyne_obs::{Counter, Histogram, Telemetry, Unit};
use mnemosyne_rawl::{LogError, TornbitLog};
use mnemosyne_region::{PMem, Regions, VAddr};
use mnemosyne_scm::EmulationMode;

use crate::error::HeapError;
use crate::large::LargeAlloc;
use crate::small::{class_of, SmallAlloc, WordWrite};

/// Heap header magic ("PHEAPHDR"), stored in the first word of the small
/// region; written last during formatting so a torn format is re-run.
const HEAP_MAGIC: u64 = u64::from_le_bytes(*b"PHEAPHDR");

/// Configuration for [`PHeap::open`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeapConfig {
    /// Prefix for the heap's region names (allows several heaps).
    pub name_prefix: String,
    /// Bytes for the small-object area (superblocks + bitmaps).
    pub small_bytes: u64,
    /// Bytes for the large-object area.
    pub large_bytes: u64,
    /// Allocator-log capacity in words.
    pub log_words: u64,
}

impl Default for HeapConfig {
    fn default() -> Self {
        HeapConfig {
            name_prefix: "pheap".to_string(),
            small_bytes: 4 << 20,
            large_bytes: 4 << 20,
            log_words: 4096,
        }
    }
}

impl HeapConfig {
    /// Config with a distinct name prefix.
    pub fn named(prefix: &str) -> Self {
        HeapConfig {
            name_prefix: prefix.to_string(),
            ..Self::default()
        }
    }

    /// Overrides the area sizes.
    pub fn with_sizes(mut self, small: u64, large: u64) -> Self {
        self.small_bytes = small;
        self.large_bytes = large;
        self
    }
}

/// Counters describing heap activity since open.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HeapStats {
    /// Successful `pmalloc` calls.
    pub allocs: u64,
    /// Successful `pfree` calls.
    pub frees: u64,
    /// Allocations served by the superblock allocator.
    pub small_allocs: u64,
    /// Allocations served by the large-object allocator.
    pub large_allocs: u64,
    /// Redo records replayed during the last recovery.
    pub replayed: u64,
}

/// `pheap.*` telemetry in the machine's registry, mirroring [`HeapStats`]
/// plus the fallback path and the §6.3.2 scavenge cost that the plain
/// struct does not expose.
struct HeapMetrics {
    allocs: Counter,
    frees: Counter,
    /// Allocations served from Hoard-style superblocks.
    superblock_allocs: Counter,
    large_allocs: Counter,
    /// Small requests that fell back to the large allocator because the
    /// superblock area was exhausted.
    fallback_allocs: Counter,
    replayed: Counter,
    /// Time spent rebuilding volatile indexes at open (§6.3.2).
    scavenge_ns: Histogram,
}

impl HeapMetrics {
    fn new(telemetry: &Telemetry) -> HeapMetrics {
        HeapMetrics {
            allocs: telemetry.counter("pheap.allocs", Unit::Count),
            frees: telemetry.counter("pheap.frees", Unit::Count),
            superblock_allocs: telemetry.counter("pheap.superblock_allocs", Unit::Count),
            large_allocs: telemetry.counter("pheap.large_allocs", Unit::Count),
            fallback_allocs: telemetry.counter("pheap.fallback_allocs", Unit::Count),
            replayed: telemetry.counter("pheap.replayed", Unit::Count),
            scavenge_ns: telemetry.histogram("pheap.scavenge_ns", Unit::Nanoseconds),
        }
    }
}

struct HeapInner {
    log: TornbitLog,
    small: SmallAlloc,
    large: LargeAlloc,
    stats: HeapStats,
    metrics: HeapMetrics,
}

/// The persistent heap. `Sync`: operations serialise on an internal lock,
/// which also enforces the allocator log's single-producer discipline.
pub struct PHeap {
    inner: Mutex<HeapInner>,
    header: VAddr,
}

impl std::fmt::Debug for PHeap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("PHeap")
            .field("stats", &inner.stats)
            .field("small_free_blocks", &inner.small.free_blocks())
            .field("large_free_bytes", &inner.large.free_bytes())
            .finish()
    }
}

impl PHeap {
    /// Opens (or creates) the heap described by `config`:
    ///
    /// 1. maps the small, large and log regions;
    /// 2. on first run, formats them and publishes the header magic;
    /// 3. otherwise recovers the allocator log, **replays** any committed
    ///    but unapplied operations, and **scavenges** both areas to rebuild
    ///    the volatile indexes (§4.3, §6.3.2).
    ///
    /// # Errors
    /// Fails on region exhaustion, log corruption, or a corrupt chunk
    /// chain.
    pub fn open(regions: &Regions, config: HeapConfig) -> Result<PHeap, HeapError> {
        let pmem = regions.pmem_handle();
        let small_name = format!("{}.small", config.name_prefix);
        let large_name = format!("{}.large", config.name_prefix);
        let log_name = format!("{}.log", config.name_prefix);
        let small_r = regions.pmap(&small_name, config.small_bytes, &pmem)?;
        let large_r = regions.pmap(&large_name, config.large_bytes, &pmem)?;
        let log_r = regions.pmap(
            &log_name,
            mnemosyne_rawl::LOG_HEADER_BYTES + config.log_words * 8,
            &pmem,
        )?;

        // First page of the small region: heap header.
        let header = small_r.addr;
        let small_area = small_r.addr.add(4096);
        let small_len = small_r.len - 4096;

        let fresh = pmem.read_u64(header) != HEAP_MAGIC;
        let mut small = SmallAlloc::new(small_area, small_len);
        let mut large = LargeAlloc::new(large_r.addr, large_r.len);
        let mut stats = HeapStats::default();
        let metrics = HeapMetrics::new(regions.telemetry());

        let log = if fresh {
            let log = TornbitLog::create(pmem, log_r.addr, config.log_words)?;
            let writes = large.format_writes();
            Self::apply(log.pmem(), &writes);
            log.pmem().store_u64(header, HEAP_MAGIC);
            log.pmem().flush(header);
            log.pmem().fence();
            log
        } else {
            let (log, records) = TornbitLog::recover(pmem, log_r.addr)?;
            // Replay committed-but-unapplied operations (redo). Records
            // are checksum-verified by recovery, so a structurally bad one
            // (odd length, unmapped target) means corruption got past the
            // media-level checks — refuse to replay rather than panic or
            // scribble on the wrong words.
            for rec in &records {
                if rec.len() % 2 != 0 {
                    return Err(HeapError::Corrupt("malformed allocator redo record"));
                }
                let pairs: Vec<WordWrite> =
                    rec.chunks_exact(2).map(|c| (VAddr(c[0]), c[1])).collect();
                for &(addr, _) in &pairs {
                    if log.pmem().try_translate(addr).is_err() {
                        return Err(HeapError::Corrupt(
                            "allocator redo record targets an unmapped address",
                        ));
                    }
                }
                Self::apply(log.pmem(), &pairs);
                stats.replayed += 1;
            }
            metrics.replayed.add(stats.replayed);
            let mut log = log;
            log.truncate_all();
            // Attribute the index-rebuild cost in the emulator's time
            // domain when the virtual clock is on, wall time otherwise.
            let wall = Instant::now();
            let accounted = log.pmem().accounted_ns();
            small.scavenge(log.pmem());
            large.scavenge(log.pmem())?;
            let ns = if log.pmem().mode() == EmulationMode::Virtual {
                log.pmem().accounted_ns().saturating_sub(accounted)
            } else {
                wall.elapsed().as_nanos() as u64
            };
            metrics.scavenge_ns.record(ns);
            log
        };

        Ok(PHeap {
            inner: Mutex::new(HeapInner {
                log,
                small,
                large,
                stats,
                metrics,
            }),
            header,
        })
    }

    /// Durably applies a list of word writes: store each, flush each line,
    /// one fence.
    fn apply(pmem: &PMem, writes: &[WordWrite]) {
        for &(addr, val) in writes {
            pmem.store_u64(addr, val);
        }
        for &(addr, _) in writes {
            pmem.flush(addr);
        }
        pmem.fence();
    }

    /// Logs then applies an operation's writes — the §4.3 atomicity
    /// protocol (log flush is the commit point; recovery redoes the rest).
    fn commit_op(inner: &mut HeapInner, writes: &[WordWrite]) -> Result<(), HeapError> {
        let mut record = Vec::with_capacity(writes.len() * 2);
        for &(a, v) in writes {
            record.push(a.0);
            record.push(v);
        }
        match inner.log.append(&record) {
            Ok(()) => {}
            Err(LogError::Full { .. }) => {
                // Synchronous truncation: prior ops are fully applied.
                inner.log.truncate_all();
                inner.log.append(&record)?;
            }
            Err(e) => return Err(e.into()),
        }
        inner.log.flush();
        Self::apply(inner.log.pmem(), writes);
        inner.log.truncate_all();
        Ok(())
    }

    /// Allocates `size` bytes of persistent memory and durably stores the
    /// block address into the persistent pointer `cell` — the paper's
    /// `pmalloc(sz, ptr)`. The cell write is part of the same atomic
    /// operation, so a crash can never strand the block (§3.4).
    ///
    /// # Errors
    /// Fails if the cell is not a persistent word-aligned address or the
    /// heap is exhausted.
    pub fn pmalloc(&self, size: u64, cell: VAddr) -> Result<VAddr, HeapError> {
        if !cell.is_persistent() || !cell.is_word_aligned() {
            return Err(HeapError::VolatileCell(cell));
        }
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        let mut writes: Vec<WordWrite> = Vec::with_capacity(12);
        let addr = if let Some(class) = class_of(size) {
            match inner.small.alloc(class, &mut writes) {
                Some(a) => {
                    inner.stats.small_allocs += 1;
                    inner.metrics.superblock_allocs.inc();
                    a
                }
                // Small area exhausted: fall back to the large allocator.
                None => {
                    writes.clear();
                    inner.metrics.fallback_allocs.inc();
                    inner
                        .large
                        .alloc(size, inner.log.pmem(), &mut writes)
                        .ok_or(HeapError::OutOfMemory { requested: size })?
                }
            }
        } else {
            let a = inner
                .large
                .alloc(size, inner.log.pmem(), &mut writes)
                .ok_or(HeapError::OutOfMemory { requested: size })?;
            inner.stats.large_allocs += 1;
            inner.metrics.large_allocs.inc();
            a
        };
        writes.push((cell, addr.0));
        Self::commit_op(inner, &writes)?;
        inner.stats.allocs += 1;
        inner.metrics.allocs.inc();
        Ok(addr)
    }

    /// Frees the block referenced by the persistent pointer `cell` and
    /// nullifies the cell — the paper's `pfree(ptr)`: "to ensure that the
    /// persistent pointer does not continue to point to the deallocated
    /// chunk if the system fails just after a deallocation".
    ///
    /// # Errors
    /// Fails if the cell does not reference a live heap block.
    pub fn pfree(&self, cell: VAddr) -> Result<(), HeapError> {
        if !cell.is_persistent() || !cell.is_word_aligned() {
            return Err(HeapError::VolatileCell(cell));
        }
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        let addr = VAddr(inner.log.pmem().read_u64(cell));
        if addr.is_null() {
            return Err(HeapError::BadPointer(addr));
        }
        let mut writes: Vec<WordWrite> = Vec::with_capacity(12);
        if inner.small.contains(addr) {
            inner.small.free(addr, &mut writes)?;
        } else if inner.large.contains(addr) {
            inner.large.free(addr, inner.log.pmem(), &mut writes)?;
        } else {
            return Err(HeapError::BadPointer(addr));
        }
        writes.push((cell, 0));
        Self::commit_op(inner, &writes)?;
        inner.stats.frees += 1;
        inner.metrics.frees.inc();
        Ok(())
    }

    /// Frees a block by address (for callers that manage their own pointer
    /// durability, e.g. transactional data structures whose pointer writes
    /// are already logged by the transaction system).
    ///
    /// # Errors
    /// Fails if `addr` is not a live heap block.
    pub fn pfree_addr(&self, addr: VAddr) -> Result<(), HeapError> {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        let mut writes: Vec<WordWrite> = Vec::with_capacity(12);
        if inner.small.contains(addr) {
            inner.small.free(addr, &mut writes)?;
        } else if inner.large.contains(addr) {
            inner.large.free(addr, inner.log.pmem(), &mut writes)?;
        } else {
            return Err(HeapError::BadPointer(addr));
        }
        Self::commit_op(inner, &writes)?;
        inner.stats.frees += 1;
        inner.metrics.frees.inc();
        Ok(())
    }

    /// Allocates without a destination cell. The caller **must** make a
    /// persistent pointer to the block durable itself (e.g. via a durable
    /// transaction), or the block leaks on a crash — this is the hazard
    /// §3.1 describes for pointers kept in volatile memory.
    ///
    /// # Errors
    /// Fails if the heap is exhausted.
    pub fn pmalloc_unanchored(&self, size: u64) -> Result<VAddr, HeapError> {
        let mut inner = self.inner.lock();
        let inner = &mut *inner;
        let mut writes: Vec<WordWrite> = Vec::with_capacity(12);
        let addr = if let Some(class) = class_of(size) {
            match inner.small.alloc(class, &mut writes) {
                Some(a) => {
                    inner.stats.small_allocs += 1;
                    inner.metrics.superblock_allocs.inc();
                    a
                }
                None => {
                    writes.clear();
                    inner.metrics.fallback_allocs.inc();
                    inner
                        .large
                        .alloc(size, inner.log.pmem(), &mut writes)
                        .ok_or(HeapError::OutOfMemory { requested: size })?
                }
            }
        } else {
            let a = inner
                .large
                .alloc(size, inner.log.pmem(), &mut writes)
                .ok_or(HeapError::OutOfMemory { requested: size })?;
            inner.stats.large_allocs += 1;
            inner.metrics.large_allocs.inc();
            a
        };
        Self::commit_op(inner, &writes)?;
        inner.stats.allocs += 1;
        inner.metrics.allocs.inc();
        Ok(addr)
    }

    /// Usable size of a live allocation, if `addr` is one.
    pub fn usable_size(&self, addr: VAddr) -> Option<u64> {
        let inner = self.inner.lock();
        if inner.small.contains(addr) {
            inner.small.usable_size(addr)
        } else if inner.large.contains(addr) {
            inner.large.usable_size(inner.log.pmem(), addr)
        } else {
            None
        }
    }

    /// Activity counters.
    pub fn stats(&self) -> HeapStats {
        self.inner.lock().stats
    }

    /// Address of the heap header (diagnostics).
    pub fn header_addr(&self) -> VAddr {
        self.header
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnemosyne_region::RegionManager;
    use mnemosyne_scm::{CrashPolicy, ScmConfig, ScmSim};
    use std::fs;
    use std::path::PathBuf;

    struct Env {
        sim: ScmSim,
        dir: PathBuf,
    }

    impl Drop for Env {
        fn drop(&mut self) {
            fs::remove_dir_all(&self.dir).ok();
        }
    }

    fn setup() -> (Env, Regions, PMem) {
        let dir = std::env::temp_dir().join(format!(
            "pheap-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        fs::remove_dir_all(&dir).ok();
        fs::create_dir_all(&dir).unwrap();
        let sim = ScmSim::new(ScmConfig::for_testing(32 << 20));
        let mgr = RegionManager::boot(&sim, &dir).unwrap();
        let (regions, pmem) = Regions::open(&mgr, 1 << 16).unwrap();
        (Env { sim, dir }, regions, pmem)
    }

    fn small_heap() -> HeapConfig {
        HeapConfig::default().with_sizes(1 << 20, 1 << 20)
    }

    #[test]
    fn alloc_write_free_roundtrip() {
        let (_env, regions, pmem) = setup();
        let heap = PHeap::open(&regions, small_heap()).unwrap();
        let (cell, _) = regions.static_area();
        let a = heap.pmalloc(100, cell).unwrap();
        assert_eq!(pmem.read_u64(cell), a.0);
        assert_eq!(heap.usable_size(a), Some(128));
        pmem.store(a, &[0xaa; 100]);
        heap.pfree(cell).unwrap();
        assert_eq!(pmem.read_u64(cell), 0, "pfree nullifies the cell");
        assert_eq!(heap.usable_size(a), None);
    }

    #[test]
    fn large_allocation_path() {
        let (_env, regions, pmem) = setup();
        let heap = PHeap::open(&regions, small_heap()).unwrap();
        let (cell, _) = regions.static_area();
        let a = heap.pmalloc(100_000, cell).unwrap();
        assert!(heap.usable_size(a).unwrap() >= 100_000);
        pmem.store(a, &[1; 1000]);
        heap.pfree(cell).unwrap();
        // Free space coalesces back to one chunk.
        let b = heap.pmalloc(100_000, cell).unwrap();
        assert_eq!(a, b, "after free+coalesce the same chunk is reused");
        heap.pfree(cell).unwrap();
        assert_eq!(heap.stats().large_allocs, 2);
    }

    #[test]
    fn allocations_persist_across_reopen() {
        let (_env, regions, pmem) = setup();
        let (cell, _) = regions.static_area();
        let a = {
            let heap = PHeap::open(&regions, small_heap()).unwrap();
            let a = heap.pmalloc(64, cell).unwrap();
            pmem.store_u64(a, 777);
            pmem.flush(a);
            pmem.fence();
            a
        };
        // "Memory can be allocated during one invocation and freed during
        // the next."
        let heap2 = PHeap::open(&regions, small_heap()).unwrap();
        assert_eq!(heap2.usable_size(a), Some(64));
        assert_eq!(pmem.read_u64(a), 777);
        heap2.pfree(cell).unwrap();
    }

    #[test]
    fn scavenge_after_crash_sees_allocations() {
        let (env, regions, pmem) = setup();
        let (cell_area, _) = regions.static_area();
        let mut addrs = Vec::new();
        {
            let heap = PHeap::open(&regions, small_heap()).unwrap();
            for i in 0..50u64 {
                let cell = cell_area.add(i * 8);
                addrs.push(heap.pmalloc(24, cell).unwrap());
            }
        }
        env.sim.crash(CrashPolicy::DropAll);
        let heap2 = PHeap::open(&regions, small_heap()).unwrap();
        // Every allocation is still live and distinct; new allocations
        // do not collide.
        let cell = cell_area.add(1000 * 8);
        for _ in 0..50 {
            let fresh = heap2.pmalloc(24, cell).unwrap();
            assert!(!addrs.contains(&fresh), "allocator reused a live block");
            assert_eq!(pmem.read_u64(cell), fresh.0);
        }
        for (i, &a) in addrs.iter().enumerate() {
            assert_eq!(heap2.usable_size(a), Some(32), "block {i} lost");
        }
    }

    #[test]
    fn crash_between_log_and_apply_is_replayed() {
        let (env, regions, pmem) = setup();
        let (cell, _) = regions.static_area();
        // We cannot stop PHeap mid-operation from outside, so emulate the
        // window: allocate, then crash with a policy that keeps *only*
        // fenced data (DropAll drops cached-but-unflushed stores). Since
        // commit_op flushes everything before returning, instead verify
        // the replay path by checking stats on a recovery after a crash
        // right at the end of an op (log truncated, nothing to replay).
        let heap = PHeap::open(&regions, small_heap()).unwrap();
        let a = heap.pmalloc(64, cell).unwrap();
        env.sim.crash(CrashPolicy::DropAll);
        let heap2 = PHeap::open(&regions, small_heap()).unwrap();
        assert_eq!(heap2.usable_size(a), Some(64));
        assert_eq!(pmem.read_u64(cell), a.0);
    }

    #[test]
    fn double_free_rejected() {
        let (_env, regions, _pmem) = setup();
        let heap = PHeap::open(&regions, small_heap()).unwrap();
        let (cell, _) = regions.static_area();
        let a = heap.pmalloc(64, cell).unwrap();
        heap.pfree(cell).unwrap();
        // Cell is now null.
        assert!(matches!(heap.pfree(cell), Err(HeapError::BadPointer(_))));
        assert!(matches!(heap.pfree_addr(a), Err(HeapError::BadPointer(_))));
    }

    #[test]
    fn volatile_cell_rejected() {
        let (_env, regions, _pmem) = setup();
        let heap = PHeap::open(&regions, small_heap()).unwrap();
        assert!(matches!(
            heap.pmalloc(64, VAddr(1234)),
            Err(HeapError::VolatileCell(_))
        ));
    }

    #[test]
    fn out_of_memory_reported() {
        let (_env, regions, _pmem) = setup();
        let heap = PHeap::open(&regions, small_heap()).unwrap();
        let (cell, _) = regions.static_area();
        assert!(matches!(
            heap.pmalloc(10 << 20, cell),
            Err(HeapError::OutOfMemory { .. })
        ));
    }

    #[test]
    fn many_sizes_and_interleaved_frees() {
        let (_env, regions, _pmem) = setup();
        let heap = PHeap::open(&regions, small_heap()).unwrap();
        let (area, _) = regions.static_area();
        let sizes = [8u64, 13, 64, 100, 256, 1000, 4096, 5000, 20_000];
        let mut cells = Vec::new();
        for round in 0..3u64 {
            for (i, &sz) in sizes.iter().enumerate() {
                let cell = area.add((round * 100 + i as u64) * 8);
                heap.pmalloc(sz, cell).unwrap();
                cells.push(cell);
            }
            // Free every other allocation.
            let mut i = 0;
            cells.retain(|&c| {
                i += 1;
                if i % 2 == 0 {
                    heap.pfree(c).unwrap();
                    false
                } else {
                    true
                }
            });
        }
        for c in cells {
            heap.pfree(c).unwrap();
        }
        let st = heap.stats();
        assert_eq!(st.allocs, st.frees);
    }

    #[test]
    fn unanchored_alloc_then_manual_free() {
        let (_env, regions, _pmem) = setup();
        let heap = PHeap::open(&regions, small_heap()).unwrap();
        let a = heap.pmalloc_unanchored(128).unwrap();
        assert_eq!(heap.usable_size(a), Some(128));
        heap.pfree_addr(a).unwrap();
        assert_eq!(heap.usable_size(a), None);
    }

    #[test]
    fn concurrent_allocations_distinct() {
        let (_env, regions, _pmem) = setup();
        let heap = std::sync::Arc::new(PHeap::open(&regions, small_heap()).unwrap());
        let (area, _) = regions.static_area();
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let heap = std::sync::Arc::clone(&heap);
            handles.push(std::thread::spawn(move || {
                let mut got = Vec::new();
                for i in 0..100u64 {
                    let cell = area.add((t * 100 + i) * 8);
                    got.push(heap.pmalloc(40, cell).unwrap());
                }
                got
            }));
        }
        let mut all: Vec<VAddr> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        let n = all.len();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), n, "concurrent pmalloc returned duplicates");
    }
}
