//! The Mnemosyne persistent heap (§4.3).
//!
//! `pmalloc`/`pfree` allocate durable memory whose allocation state itself
//! survives crashes: "memory can be allocated during one invocation and
//! freed during the next". Two allocators cooperate, as in the paper:
//!
//! * **small blocks** (≤ 4 KB) — a Hoard-derived superblock allocator
//!   ([`small`]): the heap is split into 8 KB superblocks, each holding an
//!   array of fixed-size blocks; the only *persistent* state per
//!   superblock is its block size and an allocation **bitmap vector**
//!   (stored in a separate area to limit corruption risk, per §4.3), so an
//!   allocation costs a single durable word write. Speed indexes are
//!   volatile and rebuilt by scavenging at startup;
//! * **large blocks** — a dlmalloc-style boundary-tag allocator
//!   ([`large`]) with logged header updates and coalescing on free.
//!
//! The heap is **sharded** for concurrency, mirroring Hoard's per-thread
//! superblock ownership: N shards each own a set of superblocks, their own
//! volatile size-class lists, and their own tornbit RAWL allocator log.
//! Threads hash to a home shard, steal fresh superblocks from a global
//! pool when a class runs dry, and route frees of remotely-owned blocks to
//! the owning shard's log. Recovery replays all shard logs and scavenges
//! the superblock ranges in parallel, rebuilding the (volatile) ownership
//! map from the persistent metadata.
//!
//! Atomicity: every operation appends a redo record (a flat list of
//! `(address, value)` word writes covering the bitmap/header update *and*
//! the caller's destination pointer cell) to the shard's tornbit RAWL,
//! then applies the writes. Recovery replays complete records, so the heap
//! and the caller's pointer always agree — the §3.4 anti-leak protocol.
//!
//! # Example
//!
//! ```
//! use mnemosyne_scm::{ScmSim, ScmConfig};
//! use mnemosyne_region::{RegionManager, Regions};
//! use mnemosyne_pheap::{PHeap, HeapConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! # let dir = std::env::temp_dir().join(format!("pheap-doc-{}", std::process::id()));
//! # std::fs::create_dir_all(&dir)?;
//! let sim = ScmSim::new(ScmConfig::for_testing(16 << 20));
//! let mgr = RegionManager::boot(&sim, &dir)?;
//! let (regions, pmem) = Regions::open(&mgr, 1 << 16)?;
//! let heap = PHeap::open(&regions, HeapConfig::default())?;
//!
//! // The destination pointer lives in persistent memory, so the chunk can
//! // never be leaked by a crash mid-allocation.
//! let (cell, _) = regions.static_area();
//! let block = heap.pmalloc(64, cell)?;
//! pmem.store_u64(block, 7);
//! heap.pfree(cell)?;
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod error;
pub mod heap;
pub mod large;
pub mod small;

pub use error::HeapError;
pub use heap::{
    GrowStats, HeapConfig, HeapStats, PHeap, SmallOccupancy, MAX_EXT_AREAS, MAX_SHARDS,
};

/// Superblock size in bytes (Hoard's granularity; §4.3 uses 8 KB).
pub const SUPERBLOCK_BYTES: u64 = 8192;

/// Largest request served by the superblock allocator; larger requests
/// fall back to the large-object allocator.
pub const SMALL_MAX: u64 = 4096;
