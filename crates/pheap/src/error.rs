//! Heap error type.

use std::fmt;

use mnemosyne_rawl::LogError;
use mnemosyne_region::{RegionError, VAddr};

/// Errors from persistent-heap operations.
#[derive(Debug)]
pub enum HeapError {
    /// No block of the requested size can be carved out.
    OutOfMemory {
        /// Requested bytes.
        requested: u64,
    },
    /// The pointer cell does not reference a live heap block (double free,
    /// never allocated, or foreign address).
    BadPointer(VAddr),
    /// The destination cell for `pmalloc` must be a persistent address.
    VolatileCell(VAddr),
    /// The heap region is corrupt (bad magic or inconsistent chunk chain).
    Corrupt(&'static str),
    /// Underlying region failure.
    Region(RegionError),
    /// Underlying allocator-log failure.
    Log(LogError),
}

impl fmt::Display for HeapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeapError::OutOfMemory { requested } => {
                write!(
                    f,
                    "out of persistent heap memory (requested {requested} bytes)"
                )
            }
            HeapError::BadPointer(a) => write!(f, "not a live heap block: {a}"),
            HeapError::VolatileCell(a) => {
                write!(f, "pmalloc destination cell must be persistent, got {a}")
            }
            HeapError::Corrupt(what) => write!(f, "corrupt heap: {what}"),
            HeapError::Region(e) => write!(f, "region error: {e}"),
            HeapError::Log(e) => write!(f, "allocator log error: {e}"),
        }
    }
}

impl std::error::Error for HeapError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HeapError::Region(e) => Some(e),
            HeapError::Log(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RegionError> for HeapError {
    fn from(e: RegionError) -> Self {
        HeapError::Region(e)
    }
}

impl From<LogError> for HeapError {
    fn from(e: LogError) -> Self {
        HeapError::Log(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = HeapError::OutOfMemory { requested: 128 };
        assert!(e.to_string().contains("128"));
    }
}
