//! Hoard-derived superblock allocator for blocks ≤ 4 KB (§4.3).
//!
//! The small-object area is split into 8 KB superblocks. Each superblock,
//! once assigned to a size class, holds `8192 / block_size` equal blocks.
//! Persistent state per superblock is just its block size and a bitmap
//! vector of allocated blocks, kept in a *metadata area separated from the
//! data* to reduce corruption risk. Everything else (per-class lists,
//! free counts, bitmap mirrors) is volatile and rebuilt by
//! [`SmallAlloc::scavenge`] when the program starts.
//!
//! Mutations are returned as `(address, value)` word-write lists; the heap
//! front end logs them (together with the caller's pointer-cell write) and
//! applies them durably, making each operation atomic.

use mnemosyne_region::{PMem, VAddr};

use crate::error::HeapError;
use crate::SMALL_MAX;
use crate::SUPERBLOCK_BYTES;

/// Number of size classes: 8, 16, …, 4096 bytes.
pub const NCLASSES: usize = 10;

/// Bitmap words per superblock (8192 blocks of 8 B ⇒ 1024 bits ⇒ 16 words).
const BITMAP_WORDS: usize = 16;

/// Stride of one metadata entry: block-size word + bitmap vector, rounded
/// up to a multiple of the cache line so entries never share lines.
const META_STRIDE: u64 = 192;

/// Size class index for a request (8 B minimum).
pub fn class_of(size: u64) -> Option<usize> {
    if size > SMALL_MAX {
        return None;
    }
    let sz = size.max(8).next_power_of_two();
    Some(sz.trailing_zeros() as usize - 3)
}

/// Block size of a class.
#[inline]
pub fn class_size(class: usize) -> u64 {
    8 << class
}

/// One pending durable word write.
pub type WordWrite = (VAddr, u64);

/// Volatile view of the small-object area.
#[derive(Debug)]
pub struct SmallAlloc {
    meta_base: VAddr,
    sbs_base: VAddr,
    n_superblocks: u32,
    /// Class + 1 per superblock; 0 = unassigned.
    sb_class: Vec<u8>,
    /// Free blocks per superblock.
    free_count: Vec<u32>,
    /// Volatile mirror of the persistent bitmaps.
    bitmaps: Vec<[u64; BITMAP_WORDS]>,
    /// Superblocks with free space, per class.
    class_lists: Vec<Vec<u32>>,
    /// Unassigned superblocks.
    unassigned: Vec<u32>,
}

impl SmallAlloc {
    /// Lays out the small area over `[base, base+len)`: metadata first,
    /// superblocks after (page aligned).
    pub fn new(base: VAddr, len: u64) -> SmallAlloc {
        // n metadata entries + n superblocks must fit.
        let mut n = len / (SUPERBLOCK_BYTES + META_STRIDE);
        loop {
            let meta_bytes = (n * META_STRIDE).div_ceil(4096) * 4096;
            if meta_bytes + n * SUPERBLOCK_BYTES <= len {
                break;
            }
            n -= 1;
        }
        let meta_bytes = (n * META_STRIDE).div_ceil(4096) * 4096;
        SmallAlloc {
            meta_base: base,
            sbs_base: base.add(meta_bytes),
            n_superblocks: n as u32,
            sb_class: vec![0; n as usize],
            free_count: vec![0; n as usize],
            bitmaps: vec![[0; BITMAP_WORDS]; n as usize],
            class_lists: vec![Vec::new(); NCLASSES],
            unassigned: (0..n as u32).rev().collect(),
        }
    }

    /// Number of superblocks managed.
    pub fn superblocks(&self) -> u32 {
        self.n_superblocks
    }

    fn meta_addr(&self, sb: u32) -> VAddr {
        self.meta_base.add(sb as u64 * META_STRIDE)
    }

    fn bitmap_word_addr(&self, sb: u32, widx: usize) -> VAddr {
        self.meta_addr(sb).add(8 + widx as u64 * 8)
    }

    fn sb_addr(&self, sb: u32) -> VAddr {
        self.sbs_base.add(sb as u64 * SUPERBLOCK_BYTES)
    }

    /// Whether `addr` lies in the superblock data area.
    pub fn contains(&self, addr: VAddr) -> bool {
        addr >= self.sbs_base
            && addr
                < self
                    .sbs_base
                    .add(self.n_superblocks as u64 * SUPERBLOCK_BYTES)
    }

    /// Rebuilds the volatile indexes from the persistent metadata — the
    /// startup scavenge of §4.3 whose cost §6.3.2 measures.
    pub fn scavenge(&mut self, pmem: &PMem) {
        for list in &mut self.class_lists {
            list.clear();
        }
        self.unassigned.clear();
        for sb in (0..self.n_superblocks).rev() {
            let bs = pmem.read_u64(self.meta_addr(sb));
            if bs == 0 {
                self.sb_class[sb as usize] = 0;
                self.free_count[sb as usize] = 0;
                self.bitmaps[sb as usize] = [0; BITMAP_WORDS];
                self.unassigned.push(sb);
                continue;
            }
            let class = match class_of(bs) {
                Some(c) if class_size(c) == bs => c,
                _ => {
                    // Unknown block size: treat as unassigned-but-skip to
                    // stay safe (do not allocate from it).
                    self.sb_class[sb as usize] = 0;
                    self.free_count[sb as usize] = 0;
                    continue;
                }
            };
            let blocks = (SUPERBLOCK_BYTES / bs) as u32;
            let mut bm = [0u64; BITMAP_WORDS];
            let mut used = 0;
            for (w, slot) in bm.iter_mut().enumerate() {
                // Mask out bits beyond the superblock's block count: a
                // corrupted bitmap word must not make `used` exceed
                // `blocks` (underflow below) or make alloc hand out
                // addresses past the superblock.
                let lo = (w as u32) * 64;
                let valid = blocks.saturating_sub(lo).min(64);
                let mask = if valid >= 64 {
                    !0u64
                } else {
                    (1u64 << valid) - 1
                };
                *slot = pmem.read_u64(self.bitmap_word_addr(sb, w)) & mask;
                used += slot.count_ones();
            }
            self.sb_class[sb as usize] = class as u8 + 1;
            self.bitmaps[sb as usize] = bm;
            self.free_count[sb as usize] = blocks - used;
            if blocks > used {
                self.class_lists[class].push(sb);
            }
        }
    }

    /// Allocates one block of size class `class`. Returns the block
    /// address and the durable writes that commit the allocation (the
    /// superblock's block-size word if freshly assigned, plus the bitmap
    /// word). Volatile state is updated immediately.
    pub fn alloc(&mut self, class: usize, writes: &mut Vec<WordWrite>) -> Option<VAddr> {
        let bs = class_size(class);
        let blocks = (SUPERBLOCK_BYTES / bs) as u32;
        // Find a superblock with space, dropping exhausted ones lazily.
        let sb = loop {
            match self.class_lists[class].last().copied() {
                Some(sb) if self.free_count[sb as usize] > 0 => break Some(sb),
                Some(_) => {
                    self.class_lists[class].pop();
                }
                None => break None,
            }
        };
        let sb = match sb {
            Some(sb) => sb,
            None => {
                // Assign a fresh superblock to this class.
                let sb = self.unassigned.pop()?;
                self.sb_class[sb as usize] = class as u8 + 1;
                self.free_count[sb as usize] = blocks;
                self.bitmaps[sb as usize] = [0; BITMAP_WORDS];
                self.class_lists[class].push(sb);
                writes.push((self.meta_addr(sb), bs));
                sb
            }
        };
        // Find a clear bit.
        for widx in 0..BITMAP_WORDS.min(blocks.div_ceil(64) as usize) {
            let word = self.bitmaps[sb as usize][widx];
            if word == u64::MAX {
                continue;
            }
            let bit = (!word).trailing_zeros();
            let idx = widx as u32 * 64 + bit;
            if idx >= blocks {
                break;
            }
            let new_word = word | (1 << bit);
            self.bitmaps[sb as usize][widx] = new_word;
            self.free_count[sb as usize] -= 1;
            writes.push((self.bitmap_word_addr(sb, widx), new_word));
            return Some(self.sb_addr(sb).add(idx as u64 * bs));
        }
        // Inconsistent free count; repair and fail this superblock.
        self.free_count[sb as usize] = 0;
        None
    }

    /// Frees the block at `addr`, returning the durable writes (bitmap
    /// word, plus the block-size word reset to 0 if the superblock becomes
    /// empty and is returned to the unassigned pool).
    ///
    /// # Errors
    /// [`HeapError::BadPointer`] for misaligned, unallocated, or foreign
    /// addresses.
    pub fn free(&mut self, addr: VAddr, writes: &mut Vec<WordWrite>) -> Result<(), HeapError> {
        if !self.contains(addr) {
            return Err(HeapError::BadPointer(addr));
        }
        let sb = (addr.offset_from(self.sbs_base) / SUPERBLOCK_BYTES) as u32;
        let class = match self.sb_class[sb as usize] {
            0 => return Err(HeapError::BadPointer(addr)),
            c => (c - 1) as usize,
        };
        let bs = class_size(class);
        let off = addr.offset_from(self.sb_addr(sb));
        if !off.is_multiple_of(bs) {
            return Err(HeapError::BadPointer(addr));
        }
        let idx = (off / bs) as u32;
        let widx = (idx / 64) as usize;
        let bit = 1u64 << (idx % 64);
        if self.bitmaps[sb as usize][widx] & bit == 0 {
            return Err(HeapError::BadPointer(addr)); // double free
        }
        self.bitmaps[sb as usize][widx] &= !bit;
        self.free_count[sb as usize] += 1;
        writes.push((
            self.bitmap_word_addr(sb, widx),
            self.bitmaps[sb as usize][widx],
        ));
        let blocks = (SUPERBLOCK_BYTES / bs) as u32;
        if self.free_count[sb as usize] == blocks {
            // Fully empty: return to the unassigned pool for any class.
            self.sb_class[sb as usize] = 0;
            self.free_count[sb as usize] = 0;
            self.class_lists[class].retain(|&s| s != sb);
            self.unassigned.push(sb);
            writes.push((self.meta_addr(sb), 0));
        } else if self.free_count[sb as usize] == 1 {
            // Was full; make it findable again.
            self.class_lists[class].push(sb);
        }
        Ok(())
    }

    /// Block size of the allocation at `addr`, if it is a live block.
    pub fn usable_size(&self, addr: VAddr) -> Option<u64> {
        if !self.contains(addr) {
            return None;
        }
        let sb = (addr.offset_from(self.sbs_base) / SUPERBLOCK_BYTES) as u32;
        match self.sb_class[sb as usize] {
            0 => None,
            c => {
                let bs = class_size((c - 1) as usize);
                let off = addr.offset_from(self.sb_addr(sb));
                if !off.is_multiple_of(bs) {
                    return None;
                }
                let idx = (off / bs) as u32;
                let set = self.bitmaps[sb as usize][(idx / 64) as usize] & (1 << (idx % 64));
                (set != 0).then_some(bs)
            }
        }
    }

    /// Total free blocks across all assigned superblocks (diagnostics).
    pub fn free_blocks(&self) -> u64 {
        self.free_count.iter().map(|&c| c as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_mapping() {
        assert_eq!(class_of(1), Some(0));
        assert_eq!(class_of(8), Some(0));
        assert_eq!(class_of(9), Some(1));
        assert_eq!(class_of(4096), Some(9));
        assert_eq!(class_of(4097), None);
        assert_eq!(class_size(0), 8);
        assert_eq!(class_size(9), 4096);
    }

    #[test]
    fn layout_fits() {
        let base = VAddr(0x1000_0000_0000);
        let s = SmallAlloc::new(base, 1 << 20);
        assert!(s.superblocks() >= 120, "1 MB should hold ~125 superblocks");
        assert!(s.sbs_base.0 >= base.0);
    }

    #[test]
    fn alloc_free_cycle_volatile_side() {
        let base = VAddr(0x1000_0000_0000);
        let mut s = SmallAlloc::new(base, 1 << 20);
        let mut w = Vec::new();
        let a = s.alloc(0, &mut w).unwrap();
        // Fresh superblock: block-size write + bitmap write.
        assert_eq!(w.len(), 2);
        let b = s.alloc(0, &mut w).unwrap();
        assert_ne!(a, b);
        assert_eq!(s.usable_size(a), Some(8));
        w.clear();
        s.free(a, &mut w).unwrap();
        assert_eq!(s.usable_size(a), None);
        assert!(matches!(s.free(a, &mut w), Err(HeapError::BadPointer(_))));
    }

    #[test]
    fn distinct_addresses_until_full_superblock() {
        let base = VAddr(0x1000_0000_0000);
        let mut s = SmallAlloc::new(base, 64 << 10);
        let mut seen = std::collections::HashSet::new();
        let mut w = Vec::new();
        for _ in 0..1024 {
            let a = s.alloc(0, &mut w).unwrap();
            assert!(seen.insert(a), "duplicate address {a}");
        }
    }

    #[test]
    fn empty_superblock_returns_to_pool() {
        let base = VAddr(0x1000_0000_0000);
        let mut s = SmallAlloc::new(base, 64 << 10);
        let before = s.unassigned.len();
        let mut w = Vec::new();
        let a = s.alloc(5, &mut w).unwrap(); // 256-byte class
        assert_eq!(s.unassigned.len(), before - 1);
        w.clear();
        s.free(a, &mut w).unwrap();
        assert_eq!(s.unassigned.len(), before);
        // The block-size reset write is included.
        assert!(w.iter().any(|&(_, v)| v == 0));
    }

    #[test]
    fn misaligned_free_rejected() {
        let base = VAddr(0x1000_0000_0000);
        let mut s = SmallAlloc::new(base, 64 << 10);
        let mut w = Vec::new();
        let a = s.alloc(5, &mut w).unwrap();
        assert!(matches!(
            s.free(a.add(7), &mut w),
            Err(HeapError::BadPointer(_))
        ));
    }
}
