//! Hoard-derived superblock allocator for blocks ≤ 4 KB (§4.3).
//!
//! The small-object area is split into 8 KB superblocks. Each superblock,
//! once assigned to a size class, holds `8192 / block_size` equal blocks.
//! Persistent state per superblock is just its block size and a bitmap
//! vector of allocated blocks, kept in a *metadata area separated from the
//! data* to reduce corruption risk. Everything else — per-class lists,
//! free counts, bitmap mirrors, and crucially *which shard owns which
//! superblock* — is volatile and rebuilt by scavenging at startup, exactly
//! like the paper's rebuilt speed indexes.
//!
//! Hoard's central idea is per-thread superblock ownership. The sharded
//! heap realises it with two types:
//!
//! * [`SmallLayout`] — the immutable geometry of the small area (where
//!   metadata and superblocks live), shared by every shard and by the
//!   parallel scavenger ([`SmallLayout::scan_range`]);
//! * [`ShardSmall`] — one shard's volatile view of the superblocks it
//!   currently owns. A shard allocates only from its own superblocks,
//!   adopts fresh ones from the global pool when a class runs dry, and
//!   releases fully empty ones back to the pool.
//!
//! Mutations are returned as `(address, value)` word-write lists; the heap
//! front end logs them (together with the caller's pointer-cell write) to
//! the shard's allocator log and applies them durably, making each
//! operation atomic.

use std::collections::HashMap;

use mnemosyne_region::{PMem, VAddr};

use crate::error::HeapError;
use crate::SMALL_MAX;
use crate::SUPERBLOCK_BYTES;

/// Number of size classes: 8, 16, …, 4096 bytes.
pub const NCLASSES: usize = 10;

/// Bitmap words per superblock (8192 blocks of 8 B ⇒ 1024 bits ⇒ 16 words).
pub const BITMAP_WORDS: usize = 16;

/// Stride of one metadata entry: block-size word + bitmap vector, rounded
/// up to a multiple of the cache line so entries never share lines.
const META_STRIDE: u64 = 192;

/// Size class index for a request (8 B minimum).
pub fn class_of(size: u64) -> Option<usize> {
    if size > SMALL_MAX {
        return None;
    }
    let sz = size.max(8).next_power_of_two();
    Some(sz.trailing_zeros() as usize - 3)
}

/// Block size of a class.
#[inline]
pub fn class_size(class: usize) -> u64 {
    8 << class
}

/// One pending durable word write.
pub type WordWrite = (VAddr, u64);

/// Immutable geometry of the small-object area: metadata entries first
/// (page aligned), superblocks after. Shared by all shards.
#[derive(Debug, Clone, Copy)]
pub struct SmallLayout {
    meta_base: VAddr,
    sbs_base: VAddr,
    n_superblocks: u32,
}

/// Scavenged persistent state of one assigned superblock, as read back by
/// [`SmallLayout::scan_range`].
#[derive(Debug, Clone)]
pub struct SbMeta {
    /// Size class the superblock is assigned to.
    pub class: usize,
    /// Blocks still free.
    pub free_count: u32,
    /// Allocation bitmap (invalid tail bits already masked off).
    pub bitmap: [u64; BITMAP_WORDS],
}

impl SmallLayout {
    /// Lays out the small area over `[base, base+len)`: `n` metadata
    /// entries + `n` superblocks must fit, with the superblock array page
    /// aligned.
    pub fn new(base: VAddr, len: u64) -> SmallLayout {
        let mut n = len / (SUPERBLOCK_BYTES + META_STRIDE);
        loop {
            let meta_bytes = (n * META_STRIDE).div_ceil(4096) * 4096;
            if meta_bytes + n * SUPERBLOCK_BYTES <= len {
                break;
            }
            n -= 1;
        }
        let meta_bytes = (n * META_STRIDE).div_ceil(4096) * 4096;
        SmallLayout {
            meta_base: base,
            sbs_base: base.add(meta_bytes),
            n_superblocks: n as u32,
        }
    }

    /// Number of superblocks managed.
    pub fn superblocks(&self) -> u32 {
        self.n_superblocks
    }

    /// Address of superblock `sb`'s metadata entry (block-size word).
    pub fn meta_addr(&self, sb: u32) -> VAddr {
        self.meta_base.add(sb as u64 * META_STRIDE)
    }

    fn bitmap_word_addr(&self, sb: u32, widx: usize) -> VAddr {
        self.meta_addr(sb).add(8 + widx as u64 * 8)
    }

    /// Data address of superblock `sb`.
    pub fn sb_addr(&self, sb: u32) -> VAddr {
        self.sbs_base.add(sb as u64 * SUPERBLOCK_BYTES)
    }

    /// Whether `addr` lies in the superblock data area.
    pub fn contains(&self, addr: VAddr) -> bool {
        addr >= self.sbs_base
            && addr
                < self
                    .sbs_base
                    .add(self.n_superblocks as u64 * SUPERBLOCK_BYTES)
    }

    /// Superblock index covering `addr` (which must satisfy
    /// [`SmallLayout::contains`]).
    pub fn sb_of(&self, addr: VAddr) -> u32 {
        (addr.offset_from(self.sbs_base) / SUPERBLOCK_BYTES) as u32
    }

    /// Reads back the persistent metadata of superblocks `[from, to)` —
    /// one slice of the startup scavenge of §4.3, whose cost §6.3.2
    /// measures. Recovery runs several slices concurrently, one [`PMem`]
    /// handle each.
    ///
    /// Returns `(assigned, empty)`: superblocks carrying live state, and
    /// fully unassigned ones (candidates for the global pool). A
    /// superblock whose block-size word is implausible appears in
    /// *neither* list — it is quarantined so nothing allocates from it.
    pub fn scan_range(&self, pmem: &PMem, from: u32, to: u32) -> (Vec<(u32, SbMeta)>, Vec<u32>) {
        let mut assigned = Vec::new();
        let mut empty = Vec::new();
        for sb in from..to.min(self.n_superblocks) {
            let bs = pmem.read_u64(self.meta_addr(sb));
            if bs == 0 {
                empty.push(sb);
                continue;
            }
            let class = match class_of(bs) {
                Some(c) if class_size(c) == bs => c,
                _ => continue, // quarantine: unknown block size
            };
            let blocks = (SUPERBLOCK_BYTES / bs) as u32;
            let mut bm = [0u64; BITMAP_WORDS];
            let mut used = 0;
            for (w, slot) in bm.iter_mut().enumerate() {
                // Mask out bits beyond the superblock's block count: a
                // corrupted bitmap word must not make `used` exceed
                // `blocks` (underflow below) or make alloc hand out
                // addresses past the superblock.
                let lo = (w as u32) * 64;
                let valid = blocks.saturating_sub(lo).min(64);
                let mask = if valid >= 64 {
                    !0u64
                } else {
                    (1u64 << valid) - 1
                };
                *slot = pmem.read_u64(self.bitmap_word_addr(sb, w)) & mask;
                used += slot.count_ones();
            }
            assigned.push((
                sb,
                SbMeta {
                    class,
                    free_count: blocks - used,
                    bitmap: bm,
                },
            ));
        }
        (assigned, empty)
    }
}

/// Volatile per-superblock state inside the owning shard.
#[derive(Debug)]
struct SbState {
    class: u8,
    free_count: u32,
    bitmap: [u64; BITMAP_WORDS],
}

/// One shard's volatile view of the superblocks it owns.
#[derive(Debug)]
pub struct ShardSmall {
    layout: SmallLayout,
    owned: HashMap<u32, SbState>,
    /// Owned superblocks with free space, per class.
    class_lists: Vec<Vec<u32>>,
}

impl ShardSmall {
    /// An empty shard view over `layout` (owns nothing yet).
    pub fn new(layout: SmallLayout) -> ShardSmall {
        ShardSmall {
            layout,
            owned: HashMap::new(),
            class_lists: vec![Vec::new(); NCLASSES],
        }
    }

    /// Adopts a scavenged superblock with live state (recovery path).
    pub fn adopt_scavenged(&mut self, sb: u32, meta: &SbMeta) {
        if meta.free_count > 0 {
            self.class_lists[meta.class].push(sb);
        }
        self.owned.insert(
            sb,
            SbState {
                class: meta.class as u8,
                free_count: meta.free_count,
                bitmap: meta.bitmap,
            },
        );
    }

    /// Allocates one block of size class `class` from an *owned*
    /// superblock, appending the durable bitmap write. Returns `None` when
    /// every owned superblock of the class is full — the caller then
    /// steals a fresh superblock from the global pool
    /// ([`ShardSmall::adopt_fresh_and_alloc`]) or falls back to the large
    /// allocator.
    pub fn alloc(&mut self, class: usize, writes: &mut Vec<WordWrite>) -> Option<VAddr> {
        // Find an owned superblock with space, dropping exhausted ones
        // lazily.
        let sb = loop {
            let sb = self.class_lists[class].last().copied()?;
            if self.owned.get(&sb).is_some_and(|s| s.free_count > 0) {
                break sb;
            }
            self.class_lists[class].pop();
        };
        self.alloc_in(sb, class, writes)
    }

    /// Adopts a fresh (fully empty) superblock from the global pool,
    /// assigns it to `class` (durable block-size write) and allocates the
    /// first block from it.
    pub fn adopt_fresh_and_alloc(
        &mut self,
        sb: u32,
        class: usize,
        writes: &mut Vec<WordWrite>,
    ) -> VAddr {
        let bs = class_size(class);
        self.owned.insert(
            sb,
            SbState {
                class: class as u8,
                free_count: (SUPERBLOCK_BYTES / bs) as u32,
                bitmap: [0; BITMAP_WORDS],
            },
        );
        self.class_lists[class].push(sb);
        writes.push((self.layout.meta_addr(sb), bs));
        self.alloc_in(sb, class, writes)
            .expect("fresh superblock must have a free block")
    }

    fn alloc_in(&mut self, sb: u32, class: usize, writes: &mut Vec<WordWrite>) -> Option<VAddr> {
        let bs = class_size(class);
        let blocks = (SUPERBLOCK_BYTES / bs) as u32;
        let state = self.owned.get_mut(&sb)?;
        for widx in 0..BITMAP_WORDS.min(blocks.div_ceil(64) as usize) {
            let word = state.bitmap[widx];
            if word == u64::MAX {
                continue;
            }
            let bit = (!word).trailing_zeros();
            let idx = widx as u32 * 64 + bit;
            if idx >= blocks {
                break;
            }
            let new_word = word | (1 << bit);
            state.bitmap[widx] = new_word;
            state.free_count -= 1;
            writes.push((self.layout.bitmap_word_addr(sb, widx), new_word));
            return Some(self.layout.sb_addr(sb).add(idx as u64 * bs));
        }
        // Inconsistent free count; repair and fail this superblock.
        state.free_count = 0;
        None
    }

    /// Frees the block at `addr` (which must belong to a superblock this
    /// shard owns — the heap routes by the owner table), appending the
    /// durable bitmap write. Returns `Some(sb)` if the superblock became
    /// fully empty and was relinquished: its block-size word is reset to 0
    /// in `writes` and the caller must return it to the global pool.
    ///
    /// # Errors
    /// [`HeapError::BadPointer`] for misaligned, unallocated, or
    /// not-owned-here addresses.
    pub fn free(
        &mut self,
        addr: VAddr,
        writes: &mut Vec<WordWrite>,
    ) -> Result<Option<u32>, HeapError> {
        if !self.layout.contains(addr) {
            return Err(HeapError::BadPointer(addr));
        }
        let sb = self.layout.sb_of(addr);
        let state = match self.owned.get_mut(&sb) {
            Some(s) => s,
            None => return Err(HeapError::BadPointer(addr)),
        };
        let class = state.class as usize;
        let bs = class_size(class);
        let off = addr.offset_from(self.layout.sb_addr(sb));
        if !off.is_multiple_of(bs) {
            return Err(HeapError::BadPointer(addr));
        }
        let idx = (off / bs) as u32;
        let widx = (idx / 64) as usize;
        let bit = 1u64 << (idx % 64);
        if state.bitmap[widx] & bit == 0 {
            return Err(HeapError::BadPointer(addr)); // double free
        }
        state.bitmap[widx] &= !bit;
        state.free_count += 1;
        writes.push((self.layout.bitmap_word_addr(sb, widx), state.bitmap[widx]));
        let blocks = (SUPERBLOCK_BYTES / bs) as u32;
        if state.free_count == blocks {
            // Fully empty: relinquish to the global pool for any shard and
            // class.
            self.owned.remove(&sb);
            self.class_lists[class].retain(|&s| s != sb);
            writes.push((self.layout.meta_addr(sb), 0));
            Ok(Some(sb))
        } else {
            if state.free_count == 1 {
                // Was full; make it findable again.
                self.class_lists[class].push(sb);
            }
            Ok(None)
        }
    }

    /// Block size of the allocation at `addr`, if it is a live block of an
    /// owned superblock.
    pub fn usable_size(&self, addr: VAddr) -> Option<u64> {
        if !self.layout.contains(addr) {
            return None;
        }
        let sb = self.layout.sb_of(addr);
        let state = self.owned.get(&sb)?;
        let bs = class_size(state.class as usize);
        let off = addr.offset_from(self.layout.sb_addr(sb));
        if !off.is_multiple_of(bs) {
            return None;
        }
        let idx = (off / bs) as u32;
        let set = state.bitmap[(idx / 64) as usize] & (1 << (idx % 64));
        (set != 0).then_some(bs)
    }

    /// Superblocks currently owned by this shard.
    pub fn owned_superblocks(&self) -> usize {
        self.owned.len()
    }

    /// Total free blocks across owned superblocks (diagnostics).
    pub fn free_blocks(&self) -> u64 {
        self.owned.values().map(|s| s.free_count as u64).sum()
    }

    /// Total allocated blocks across owned superblocks (diagnostics).
    pub fn live_blocks(&self) -> u64 {
        self.owned
            .values()
            .map(|s| SUPERBLOCK_BYTES / class_size(s.class as usize) - s.free_count as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_mapping() {
        assert_eq!(class_of(1), Some(0));
        assert_eq!(class_of(8), Some(0));
        assert_eq!(class_of(9), Some(1));
        assert_eq!(class_of(4096), Some(9));
        assert_eq!(class_of(4097), None);
        assert_eq!(class_size(0), 8);
        assert_eq!(class_size(9), 4096);
    }

    #[test]
    fn layout_fits() {
        let base = VAddr(0x1000_0000_0000);
        let l = SmallLayout::new(base, 1 << 20);
        assert!(l.superblocks() >= 120, "1 MB should hold ~125 superblocks");
        assert!(l.sbs_base.0 >= base.0);
    }

    #[test]
    fn alloc_free_cycle_volatile_side() {
        let base = VAddr(0x1000_0000_0000);
        let layout = SmallLayout::new(base, 1 << 20);
        let mut s = ShardSmall::new(layout);
        let mut w = Vec::new();
        let a = s.adopt_fresh_and_alloc(0, 0, &mut w);
        // Fresh superblock: block-size write + bitmap write.
        assert_eq!(w.len(), 2);
        let b = s.alloc(0, &mut w).unwrap();
        assert_ne!(a, b);
        assert_eq!(s.usable_size(a), Some(8));
        w.clear();
        assert_eq!(s.free(a, &mut w).unwrap(), None);
        assert_eq!(s.usable_size(a), None);
        assert!(matches!(s.free(a, &mut w), Err(HeapError::BadPointer(_))));
    }

    #[test]
    fn distinct_addresses_until_full_superblock() {
        let base = VAddr(0x1000_0000_0000);
        let layout = SmallLayout::new(base, 64 << 10);
        let mut s = ShardSmall::new(layout);
        let mut seen = std::collections::HashSet::new();
        let mut w = Vec::new();
        s.adopt_fresh_and_alloc(0, 0, &mut w);
        for _ in 0..1023 {
            let a = s.alloc(0, &mut w).unwrap();
            assert!(seen.insert(a), "duplicate address {a}");
        }
        // 8192 / 8 = 1024 blocks: the superblock is now full.
        assert!(s.alloc(0, &mut w).is_none());
    }

    #[test]
    fn empty_superblock_relinquished() {
        let base = VAddr(0x1000_0000_0000);
        let layout = SmallLayout::new(base, 64 << 10);
        let mut s = ShardSmall::new(layout);
        let mut w = Vec::new();
        let a = s.adopt_fresh_and_alloc(3, 5, &mut w); // 256-byte class
        assert_eq!(s.owned_superblocks(), 1);
        w.clear();
        assert_eq!(s.free(a, &mut w).unwrap(), Some(3));
        assert_eq!(s.owned_superblocks(), 0);
        // The block-size reset write is included.
        assert!(w.iter().any(|&(_, v)| v == 0));
    }

    #[test]
    fn misaligned_free_rejected() {
        let base = VAddr(0x1000_0000_0000);
        let layout = SmallLayout::new(base, 64 << 10);
        let mut s = ShardSmall::new(layout);
        let mut w = Vec::new();
        let a = s.adopt_fresh_and_alloc(0, 5, &mut w);
        assert!(matches!(
            s.free(a.add(7), &mut w),
            Err(HeapError::BadPointer(_))
        ));
    }

    #[test]
    fn free_of_unowned_superblock_rejected() {
        let base = VAddr(0x1000_0000_0000);
        let layout = SmallLayout::new(base, 64 << 10);
        let mut s = ShardSmall::new(layout);
        let mut w = Vec::new();
        // Superblock 2 was never adopted by this shard.
        assert!(matches!(
            s.free(layout.sb_addr(2), &mut w),
            Err(HeapError::BadPointer(_))
        ));
    }
}
