//! Property tests for the sharded heap's cross-shard machinery.
//!
//! Across shard counts 1, 2, and 7 (one shard, an even split, and a
//! count that leaves thread→shard hashing unbalanced), interleaved
//! concurrent allocation with a random mix of immediate (local) frees
//! and deferred frees — which the main thread later issues as *remote*
//! frees routed to the owning shard — must never hand out the same
//! block twice, and freeing everything must return every superblock:
//! no block stays marked live and no superblock is stranded outside
//! the shard-owned + pooled census.

use std::collections::HashSet;
use std::path::PathBuf;
use std::sync::Arc;

use proptest::prelude::*;

use mnemosyne_pheap::{HeapConfig, PHeap};
use mnemosyne_region::{RegionManager, Regions};
use mnemosyne_scm::{ScmConfig, ScmSim};

const THREADS: usize = 3;

fn dir(tag: &str) -> PathBuf {
    static N: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = N.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let d = std::env::temp_dir().join(format!("pheap-prop-{tag}-{}-{n}", std::process::id()));
    std::fs::remove_dir_all(&d).ok();
    d
}

/// One worker's plan: `(size, free_immediately)` per allocation. Sizes
/// stay in the small-class range so the superblock census covers every
/// block the case touches.
type Plan = Vec<(u16, bool)>;

fn churn(shards: usize, plans: Vec<Plan>) {
    let d = dir("churn");
    std::fs::create_dir_all(&d).unwrap();
    let sim = ScmSim::new(ScmConfig::for_testing(32 << 20));
    let mgr = RegionManager::boot(&sim, &d).unwrap();
    let (regions, _pmem) = Regions::open(&mgr, 1 << 16).unwrap();
    let heap = Arc::new(PHeap::open(&regions, HeapConfig::default().with_shards(shards)).unwrap());
    assert_eq!(heap.shard_count(), shards);

    let handles: Vec<_> = plans
        .into_iter()
        .map(|plan| {
            let heap = Arc::clone(&heap);
            std::thread::spawn(move || {
                let mut kept = Vec::new();
                for (size, free_now) in plan {
                    let addr = heap.pmalloc_unanchored(size.max(1) as u64).unwrap();
                    if free_now {
                        heap.pfree_addr(addr).unwrap();
                    } else {
                        kept.push(addr);
                    }
                }
                kept
            })
        })
        .collect();
    let mut results = Vec::new();
    let mut panic = None;
    for h in handles {
        match h.join() {
            Ok(kept) => results.push(kept),
            Err(p) => panic = Some(p),
        }
    }
    if let Some(p) = panic {
        std::panic::resume_unwind(p);
    }

    // No double allocation: every live pointer is unique, regardless of
    // which shard served it or whether its superblock was stolen from
    // the pool mid-run.
    let total: usize = results.iter().map(Vec::len).sum();
    let distinct: HashSet<_> = results.iter().flatten().copied().collect();
    assert_eq!(distinct.len(), total, "allocator handed out a block twice");

    // Remote-free every survivor from this (fourth) thread, then demand
    // a leak-free census: nothing live, every superblock accounted for.
    for addr in results.into_iter().flatten() {
        heap.pfree_addr(addr).unwrap();
    }
    let occ = heap.small_occupancy();
    assert_eq!(
        occ.live_blocks, 0,
        "blocks leaked after freeing all: {occ:?}"
    );
    assert_eq!(
        occ.owned_superblocks + occ.pooled_superblocks,
        occ.total_superblocks,
        "superblocks stranded: {occ:?}"
    );
    let stats = heap.stats();
    assert_eq!(stats.allocs, stats.frees, "alloc/free imbalance: {stats:?}");

    drop(heap);
    drop(sim);
    std::fs::remove_dir_all(&d).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn concurrent_churn_never_double_allocates_or_leaks(
        shards in (0usize..3).prop_map(|i| [1usize, 2, 7][i]),
        plans in proptest::collection::vec(
            proptest::collection::vec((1u16..2049, any::<bool>()), 1..48),
            THREADS..THREADS + 1,
        ),
    ) {
        churn(shards, plans);
    }
}
