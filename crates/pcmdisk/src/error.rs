//! File-system error type.

use std::fmt;

/// Errors from [`crate::SimpleFs`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsError {
    /// No such file.
    NotFound(String),
    /// A file with this name already exists.
    Exists(String),
    /// The fixed file table is full.
    FileTableFull,
    /// The device has no free blocks (or a file ran out of extent slots).
    NoSpace,
    /// Invalid file name (empty, too long, or contains a separator).
    BadName(String),
    /// The superblock is corrupt.
    Corrupt(&'static str),
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::NotFound(n) => write!(f, "no such file '{n}'"),
            FsError::Exists(n) => write!(f, "file '{n}' already exists"),
            FsError::FileTableFull => write!(f, "file table is full"),
            FsError::NoSpace => write!(f, "no space left on device"),
            FsError::BadName(n) => write!(f, "invalid file name '{n}'"),
            FsError::Corrupt(w) => write!(f, "corrupt file system: {w}"),
        }
    }
}

impl std::error::Error for FsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(
            FsError::NotFound("x".into()).to_string(),
            "no such file 'x'"
        );
    }
}
