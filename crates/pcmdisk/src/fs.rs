//! SimpleFs: a minimal extent-based file system over [`PcmDisk`].
//!
//! Stands in for the ext2 mount of §6.1. Layout:
//!
//! ```text
//! block 0              superblock
//! blocks 1..b          allocation bitmap (1 bit per block)
//! blocks b..b+2        file table (64-byte entries)
//! rest                 data blocks, allocated as extents
//! ```
//!
//! Files grow by appending extents with doubling chunk sizes, so even a
//! steadily growing write-ahead log needs only a handful of extents.
//! Metadata updates are written through the device's page cache;
//! [`SimpleFs::sync`] (the `fsync` analogue) forces everything dirty to
//! PCM with the per-block cost model.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::disk::PcmDisk;
use crate::error::FsError;
use crate::BLOCK_SIZE;

const FS_MAGIC: u64 = u64::from_le_bytes(*b"SIMPLEFS");
const NAME_MAX: usize = 20;
const EXTENTS: usize = 8;
const ENTRY_BYTES: usize = 128;
const TABLE_BLOCKS: u64 = 2;
const MAX_FILES: usize = (TABLE_BLOCKS as usize * BLOCK_SIZE as usize) / ENTRY_BYTES;
/// First extent allocation, in blocks; doubles per extent.
const FIRST_CHUNK: u32 = 64;

#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Extent {
    start: u32,
    len: u32,
}

#[derive(Debug, Clone, Default)]
struct FileEntry {
    name: String,
    size: u64,
    extents: [Extent; EXTENTS],
}

impl FileEntry {
    fn capacity_blocks(&self) -> u64 {
        self.extents.iter().map(|e| e.len as u64).sum()
    }

    /// Physical block for logical block `l`, if allocated.
    fn map_block(&self, l: u64) -> Option<u64> {
        let mut off = 0u64;
        for e in &self.extents {
            if e.len == 0 {
                break;
            }
            if l < off + e.len as u64 {
                return Some(e.start as u64 + (l - off));
            }
            off += e.len as u64;
        }
        None
    }
}

struct FsState {
    entries: Vec<Option<FileEntry>>,
    bitmap: Vec<u64>,
    data_start: u64,
}

/// The file system. Cloneable handle (`Arc` inside); operations serialise
/// on an internal lock, like a kernel FS under one superblock lock.
#[derive(Clone)]
pub struct SimpleFs {
    disk: Arc<PcmDisk>,
    state: Arc<Mutex<FsState>>,
}

impl std::fmt::Debug for SimpleFs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimpleFs")
            .field("files", &self.list().len())
            .finish()
    }
}

impl SimpleFs {
    /// Formats (or re-opens) a file system on `disk`.
    ///
    /// # Errors
    /// Fails if the device is too small or the superblock is corrupt.
    pub fn format(disk: Arc<PcmDisk>) -> Result<SimpleFs, FsError> {
        let blocks = disk.blocks();
        let bitmap_blocks = blocks.div_ceil(BLOCK_SIZE * 8);
        let data_start = 1 + bitmap_blocks + TABLE_BLOCKS;
        if blocks < data_start + 8 {
            return Err(FsError::NoSpace);
        }
        let mut bitmap = vec![0u64; (blocks.div_ceil(64)) as usize];
        for b in 0..data_start {
            bitmap[(b / 64) as usize] |= 1 << (b % 64);
        }
        let state = FsState {
            entries: vec![None; MAX_FILES],
            bitmap,
            data_start,
        };
        let fs = SimpleFs {
            disk,
            state: Arc::new(Mutex::new(state)),
        };
        // Write superblock + empty metadata.
        let mut sb = vec![0u8; BLOCK_SIZE as usize];
        sb[0..8].copy_from_slice(&FS_MAGIC.to_le_bytes());
        sb[8..16].copy_from_slice(&blocks.to_le_bytes());
        sb[16..24].copy_from_slice(&bitmap_blocks.to_le_bytes());
        fs.disk.write_block(0, &sb);
        {
            let st = fs.state.lock();
            fs.write_bitmap(&st);
            for i in 0..TABLE_BLOCKS {
                fs.write_table_block(&st, i);
            }
        }
        fs.disk.sync();
        Ok(fs)
    }

    /// Re-opens an existing file system, reading metadata from the disk.
    ///
    /// # Errors
    /// Fails if the superblock is missing or corrupt.
    pub fn open(disk: Arc<PcmDisk>) -> Result<SimpleFs, FsError> {
        let mut sb = vec![0u8; BLOCK_SIZE as usize];
        disk.read_block(0, &mut sb);
        if u64::from_le_bytes(sb[0..8].try_into().unwrap()) != FS_MAGIC {
            return Err(FsError::Corrupt("bad magic"));
        }
        let blocks = u64::from_le_bytes(sb[8..16].try_into().unwrap());
        let bitmap_blocks = u64::from_le_bytes(sb[16..24].try_into().unwrap());
        if blocks != disk.blocks() {
            return Err(FsError::Corrupt("size mismatch"));
        }
        let data_start = 1 + bitmap_blocks + TABLE_BLOCKS;
        // Read bitmap.
        let mut bitmap = vec![0u64; blocks.div_ceil(64) as usize];
        let mut buf = vec![0u8; BLOCK_SIZE as usize];
        for b in 0..bitmap_blocks {
            disk.read_block(1 + b, &mut buf);
            for (i, chunk) in buf.chunks_exact(8).enumerate() {
                let idx = (b * BLOCK_SIZE / 8) as usize + i;
                if idx < bitmap.len() {
                    bitmap[idx] = u64::from_le_bytes(chunk.try_into().unwrap());
                }
            }
        }
        // Read file table.
        let mut entries = vec![None; MAX_FILES];
        for tb in 0..TABLE_BLOCKS {
            disk.read_block(1 + bitmap_blocks + tb, &mut buf);
            for (i, raw) in buf.chunks_exact(ENTRY_BYTES).enumerate() {
                let slot = (tb * (BLOCK_SIZE / ENTRY_BYTES as u64)) as usize + i;
                let name_len = raw[0] as usize;
                if name_len == 0 || name_len > NAME_MAX {
                    continue;
                }
                let name = String::from_utf8_lossy(&raw[1..1 + name_len]).into_owned();
                let size = u64::from_le_bytes(raw[24..32].try_into().unwrap());
                let mut extents = [Extent::default(); EXTENTS];
                for (e, ext) in extents.iter_mut().enumerate() {
                    let off = 32 + e * 8;
                    ext.start = u32::from_le_bytes(raw[off..off + 4].try_into().unwrap());
                    ext.len = u32::from_le_bytes(raw[off + 4..off + 8].try_into().unwrap());
                }
                entries[slot] = Some(FileEntry {
                    name,
                    size,
                    extents,
                });
            }
        }
        Ok(SimpleFs {
            disk,
            state: Arc::new(Mutex::new(FsState {
                entries,
                bitmap,
                data_start,
            })),
        })
    }

    /// The underlying device.
    pub fn disk(&self) -> &Arc<PcmDisk> {
        &self.disk
    }

    fn write_bitmap(&self, st: &FsState) {
        let bitmap_blocks = self.disk.blocks().div_ceil(BLOCK_SIZE * 8);
        let mut buf = vec![0u8; BLOCK_SIZE as usize];
        for b in 0..bitmap_blocks {
            buf.fill(0);
            for i in 0..(BLOCK_SIZE / 8) as usize {
                let idx = (b * BLOCK_SIZE / 8) as usize + i;
                if idx < st.bitmap.len() {
                    buf[i * 8..i * 8 + 8].copy_from_slice(&st.bitmap[idx].to_le_bytes());
                }
            }
            self.disk.write_block(1 + b, &buf);
        }
    }

    fn write_table_block(&self, st: &FsState, tb: u64) {
        let per = (BLOCK_SIZE / ENTRY_BYTES as u64) as usize;
        let mut buf = vec![0u8; BLOCK_SIZE as usize];
        for i in 0..per {
            let slot = tb as usize * per + i;
            if let Some(Some(e)) = st.entries.get(slot) {
                let raw = &mut buf[i * ENTRY_BYTES..(i + 1) * ENTRY_BYTES];
                raw[0] = e.name.len() as u8;
                raw[1..1 + e.name.len()].copy_from_slice(e.name.as_bytes());
                raw[24..32].copy_from_slice(&e.size.to_le_bytes());
                for (x, ext) in e.extents.iter().enumerate() {
                    let off = 32 + x * 8;
                    raw[off..off + 4].copy_from_slice(&ext.start.to_le_bytes());
                    raw[off + 4..off + 8].copy_from_slice(&ext.len.to_le_bytes());
                }
            }
        }
        let bitmap_blocks = self.disk.blocks().div_ceil(BLOCK_SIZE * 8);
        self.disk.write_block(1 + bitmap_blocks + tb, &buf);
    }

    fn flush_entry(&self, st: &FsState, slot: usize) {
        let per = (BLOCK_SIZE / ENTRY_BYTES as u64) as usize;
        self.write_table_block(st, (slot / per) as u64);
    }

    fn find(st: &FsState, name: &str) -> Option<usize> {
        st.entries
            .iter()
            .position(|e| e.as_ref().is_some_and(|e| e.name == name))
    }

    /// Allocates `want` contiguous blocks, best effort (falls back to the
    /// largest available run ≥ 1).
    fn alloc_extent(st: &mut FsState, want: u32) -> Option<Extent> {
        let total = st.bitmap.len() as u64 * 64;
        let mut run_start = 0u64;
        let mut run_len = 0u32;
        let mut best: Option<Extent> = None;
        for b in st.data_start..total {
            let free = st.bitmap[(b / 64) as usize] & (1 << (b % 64)) == 0;
            if free {
                if run_len == 0 {
                    run_start = b;
                }
                run_len += 1;
                if run_len >= want {
                    best = Some(Extent {
                        start: run_start as u32,
                        len: run_len,
                    });
                    break;
                }
            } else {
                if run_len > 0 && best.is_none_or(|e| e.len < run_len) {
                    best = Some(Extent {
                        start: run_start as u32,
                        len: run_len,
                    });
                }
                run_len = 0;
            }
        }
        if run_len > 0 && best.is_none_or(|e| e.len < run_len) {
            best = Some(Extent {
                start: run_start as u32,
                len: run_len,
            });
        }
        let e = best?;
        for b in e.start as u64..e.start as u64 + e.len as u64 {
            st.bitmap[(b / 64) as usize] |= 1 << (b % 64);
        }
        Some(e)
    }

    fn free_extent(st: &mut FsState, e: Extent) {
        for b in e.start as u64..e.start as u64 + e.len as u64 {
            st.bitmap[(b / 64) as usize] &= !(1 << (b % 64));
        }
    }

    /// Creates an empty file.
    ///
    /// # Errors
    /// Fails on duplicate names, bad names, or a full table.
    pub fn create(&self, name: &str) -> Result<(), FsError> {
        if name.is_empty() || name.len() > NAME_MAX || name.contains('/') {
            return Err(FsError::BadName(name.to_string()));
        }
        let mut st = self.state.lock();
        if Self::find(&st, name).is_some() {
            return Err(FsError::Exists(name.to_string()));
        }
        let slot = st
            .entries
            .iter()
            .position(|e| e.is_none())
            .ok_or(FsError::FileTableFull)?;
        st.entries[slot] = Some(FileEntry {
            name: name.to_string(),
            ..Default::default()
        });
        self.flush_entry(&st, slot);
        Ok(())
    }

    /// Whether the file exists.
    pub fn exists(&self, name: &str) -> bool {
        Self::find(&self.state.lock(), name).is_some()
    }

    /// All file names.
    pub fn list(&self) -> Vec<String> {
        self.state
            .lock()
            .entries
            .iter()
            .flatten()
            .map(|e| e.name.clone())
            .collect()
    }

    /// File size in bytes.
    ///
    /// # Errors
    /// Fails if the file does not exist.
    pub fn size(&self, name: &str) -> Result<u64, FsError> {
        let st = self.state.lock();
        let slot = Self::find(&st, name).ok_or_else(|| FsError::NotFound(name.into()))?;
        Ok(st.entries[slot].as_ref().unwrap().size)
    }

    /// Deletes the file, freeing its blocks.
    ///
    /// # Errors
    /// Fails if the file does not exist.
    pub fn delete(&self, name: &str) -> Result<(), FsError> {
        let mut st = self.state.lock();
        let slot = Self::find(&st, name).ok_or_else(|| FsError::NotFound(name.into()))?;
        let entry = st.entries[slot].take().unwrap();
        for e in entry.extents {
            if e.len > 0 {
                Self::free_extent(&mut st, e);
            }
        }
        self.write_bitmap(&st);
        self.flush_entry(&st, slot);
        Ok(())
    }

    /// Truncates the file to `size` bytes, freeing whole extents beyond
    /// it (used by the storage manager to reset its write-ahead log).
    ///
    /// # Errors
    /// Fails if the file does not exist.
    pub fn truncate(&self, name: &str, size: u64) -> Result<(), FsError> {
        let mut st = self.state.lock();
        let slot = Self::find(&st, name).ok_or_else(|| FsError::NotFound(name.into()))?;
        let mut entry = st.entries[slot].clone().unwrap();
        let keep_blocks = size.div_ceil(BLOCK_SIZE);
        let mut seen = 0u64;
        let mut to_free = Vec::new();
        for e in entry.extents.iter_mut() {
            if e.len == 0 {
                continue;
            }
            if seen >= keep_blocks {
                to_free.push(*e);
                *e = Extent::default();
            } else {
                seen += e.len as u64;
            }
        }
        entry.size = size.min(entry.size);
        st.entries[slot] = Some(entry);
        for e in to_free {
            Self::free_extent(&mut st, e);
        }
        self.write_bitmap(&st);
        self.flush_entry(&st, slot);
        Ok(())
    }

    /// Writes `data` at byte offset `off`, growing the file as needed.
    ///
    /// # Errors
    /// Fails if the file does not exist or space runs out.
    pub fn pwrite(&self, name: &str, off: u64, data: &[u8]) -> Result<(), FsError> {
        let mut st = self.state.lock();
        let slot = Self::find(&st, name).ok_or_else(|| FsError::NotFound(name.into()))?;
        let mut entry = st.entries[slot].clone().unwrap();
        let end = off + data.len() as u64;
        let mut grew = false;
        // Grow capacity with doubling extent chunks.
        while entry.capacity_blocks() * BLOCK_SIZE < end {
            grew = true;
            let used = entry.extents.iter().filter(|e| e.len > 0).count();
            if used == EXTENTS {
                return Err(FsError::NoSpace);
            }
            let needed_blocks = end.div_ceil(BLOCK_SIZE) - entry.capacity_blocks();
            let want = (FIRST_CHUNK << used).max(needed_blocks.min(u32::MAX as u64) as u32);
            let e = Self::alloc_extent(&mut st, want).ok_or(FsError::NoSpace)?;
            entry.extents[used] = e;
        }
        // Write data block by block (read-modify-write at the edges).
        let mut pos = 0usize;
        let mut buf = vec![0u8; BLOCK_SIZE as usize];
        while pos < data.len() {
            let abs = off + pos as u64;
            let lblock = abs / BLOCK_SIZE;
            let boff = (abs % BLOCK_SIZE) as usize;
            let n = (BLOCK_SIZE as usize - boff).min(data.len() - pos);
            let pblock = entry
                .map_block(lblock)
                .ok_or(FsError::Corrupt("unmapped block"))?;
            if boff != 0 || n != BLOCK_SIZE as usize {
                self.disk.read_block(pblock, &mut buf);
            } else {
                buf.fill(0);
            }
            buf[boff..boff + n].copy_from_slice(&data[pos..pos + n]);
            self.disk.write_block(pblock, &buf);
            pos += n;
        }
        let size_changed = end > entry.size;
        if size_changed {
            entry.size = end;
        }
        st.entries[slot] = Some(entry);
        // Metadata blocks are only rewritten when metadata changed, so a
        // steady-state overwrite dirties just its data blocks.
        if grew {
            self.write_bitmap(&st);
        }
        if grew || size_changed {
            self.flush_entry(&st, slot);
        }
        Ok(())
    }

    /// `fsync(file)`: forces only this file's dirty blocks (plus file-
    /// system metadata) to PCM; returns blocks synced.
    ///
    /// # Errors
    /// Fails if the file does not exist.
    pub fn fsync(&self, name: &str) -> Result<u64, FsError> {
        let (extents, data_start) = {
            let st = self.state.lock();
            let slot = Self::find(&st, name).ok_or_else(|| FsError::NotFound(name.into()))?;
            (st.entries[slot].as_ref().unwrap().extents, st.data_start)
        };
        Ok(self.disk.sync_if(|b| {
            b < data_start
                || extents
                    .iter()
                    .any(|e| e.len > 0 && b >= e.start as u64 && b < e.start as u64 + e.len as u64)
        }))
    }

    /// Reads up to `buf.len()` bytes at offset `off`; returns bytes read
    /// (short at end of file, zero past it).
    ///
    /// # Errors
    /// Fails if the file does not exist.
    pub fn pread(&self, name: &str, off: u64, buf: &mut [u8]) -> Result<usize, FsError> {
        let st = self.state.lock();
        let slot = Self::find(&st, name).ok_or_else(|| FsError::NotFound(name.into()))?;
        let entry = st.entries[slot].as_ref().unwrap();
        if off >= entry.size {
            return Ok(0);
        }
        let want = buf.len().min((entry.size - off) as usize);
        let mut pos = 0usize;
        let mut block = vec![0u8; BLOCK_SIZE as usize];
        while pos < want {
            let abs = off + pos as u64;
            let lblock = abs / BLOCK_SIZE;
            let boff = (abs % BLOCK_SIZE) as usize;
            let n = (BLOCK_SIZE as usize - boff).min(want - pos);
            match entry.map_block(lblock) {
                Some(pb) => {
                    self.disk.read_block(pb, &mut block);
                    buf[pos..pos + n].copy_from_slice(&block[boff..boff + n]);
                }
                None => buf[pos..pos + n].fill(0),
            }
            pos += n;
        }
        Ok(want)
    }

    /// `fsync`: forces all dirty blocks to PCM; returns blocks synced.
    pub fn sync(&self) -> u64 {
        self.disk.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::DiskConfig;

    fn fs() -> SimpleFs {
        SimpleFs::format(Arc::new(PcmDisk::new(DiskConfig::for_testing(1024)))).unwrap()
    }

    #[test]
    fn create_write_read() {
        let fs = fs();
        fs.create("a.db").unwrap();
        let data: Vec<u8> = (0..100u8).collect();
        fs.pwrite("a.db", 10, &data).unwrap();
        let mut back = vec![0u8; 100];
        assert_eq!(fs.pread("a.db", 10, &mut back).unwrap(), 100);
        assert_eq!(back, data);
        assert_eq!(fs.size("a.db").unwrap(), 110);
    }

    #[test]
    fn large_file_spans_extents() {
        let fs = fs();
        fs.create("big").unwrap();
        let chunk = vec![0xabu8; 64 * 1024];
        for i in 0..4u64 {
            fs.pwrite("big", i * chunk.len() as u64, &chunk).unwrap();
        }
        let mut back = vec![0u8; 1000];
        fs.pread("big", 3 * 64 * 1024 + 500, &mut back).unwrap();
        assert!(back.iter().all(|&b| b == 0xab));
    }

    #[test]
    fn metadata_survives_reopen_after_sync() {
        let disk = Arc::new(PcmDisk::new(DiskConfig::for_testing(1024)));
        {
            let fs = SimpleFs::format(Arc::clone(&disk)).unwrap();
            fs.create("keep").unwrap();
            fs.pwrite("keep", 0, b"persist me").unwrap();
            fs.sync();
        }
        disk.crash(); // unsynced state would vanish
        let fs2 = SimpleFs::open(disk).unwrap();
        assert!(fs2.exists("keep"));
        let mut buf = vec![0u8; 10];
        fs2.pread("keep", 0, &mut buf).unwrap();
        assert_eq!(&buf, b"persist me");
    }

    #[test]
    fn delete_frees_space() {
        let fs = fs();
        fs.create("x").unwrap();
        fs.pwrite("x", 0, &vec![1u8; 100 * 1024]).unwrap();
        fs.delete("x").unwrap();
        assert!(!fs.exists("x"));
        // Space is reusable.
        fs.create("y").unwrap();
        fs.pwrite("y", 0, &vec![2u8; 100 * 1024]).unwrap();
    }

    #[test]
    fn truncate_frees_tail_extents() {
        let fs = fs();
        fs.create("log").unwrap();
        fs.pwrite("log", 0, &vec![3u8; 512 * 1024]).unwrap();
        fs.truncate("log", 0).unwrap();
        assert_eq!(fs.size("log").unwrap(), 0);
        // Can grow again from scratch.
        fs.pwrite("log", 0, &vec![4u8; 512 * 1024]).unwrap();
    }

    #[test]
    fn errors() {
        let fs = fs();
        assert!(matches!(
            fs.pread("nope", 0, &mut [0u8; 4]),
            Err(FsError::NotFound(_))
        ));
        fs.create("dup").unwrap();
        assert!(matches!(fs.create("dup"), Err(FsError::Exists(_))));
        assert!(matches!(fs.create("bad/name"), Err(FsError::BadName(_))));
    }

    #[test]
    fn read_past_eof_is_short() {
        let fs = fs();
        fs.create("s").unwrap();
        fs.pwrite("s", 0, b"abc").unwrap();
        let mut buf = [0u8; 10];
        assert_eq!(fs.pread("s", 0, &mut buf).unwrap(), 3);
        assert_eq!(fs.pread("s", 5, &mut buf).unwrap(), 0);
    }
}
