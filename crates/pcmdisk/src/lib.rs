//! PCM-disk: a block-device emulator for PCM plus a minimal file system.
//!
//! The paper's comparison systems (Berkeley DB, file serialization, Tokyo
//! Cabinet's `msync` mode) run on "PCM-disk, an emulator for a PCM-based
//! block device. Based on Linux's RAM disk, PCM disk introduces delays
//! when writing a block. We model block writes using sequential
//! write-through operations … and mount an ext2 file system" (§6.1).
//!
//! * [`PcmDisk`] — the block device: a volatile page cache over PCM
//!   media; a block write is charged one PCM write latency plus
//!   `block_size / bandwidth` at sync time, with **one fence per block**
//!   (the property §6.3 credits for Berkeley DB's large-write efficiency);
//! * [`SimpleFs`] — a small extent-based file system (superblock,
//!   allocation bitmap, fixed file table) standing in for ext2: create /
//!   delete / `pread` / `pwrite` / `fsync`.

#![warn(missing_docs)]

pub mod disk;
pub mod error;
pub mod fs;

pub use disk::{DiskConfig, DiskStats, PcmDisk};
pub use error::FsError;
pub use fs::SimpleFs;

/// Block size of the device and file system.
pub const BLOCK_SIZE: u64 = 4096;
