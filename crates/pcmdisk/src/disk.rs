//! The PCM block device.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use parking_lot::{Mutex, RwLock};

use mnemosyne_obs::{Counter, Telemetry, Unit};
use mnemosyne_scm::{EmulationMode, FaultPlan, FaultSite};

use crate::BLOCK_SIZE;

/// Configuration of a [`PcmDisk`].
#[derive(Debug, Clone, PartialEq)]
pub struct DiskConfig {
    /// Device capacity in blocks.
    pub blocks: u64,
    /// Extra PCM write latency charged once per synced block, in
    /// nanoseconds (the fence the block write ends with).
    pub write_latency_ns: u64,
    /// Streaming bandwidth in bytes per nanosecond (4.0 = 4 GB/s).
    pub bandwidth_bytes_per_ns: f64,
    /// Software cost charged once per sync operation, in nanoseconds:
    /// the system call, VFS, file-system and block-layer path every
    /// `fsync`/`msync` on the paper's PCM-disk traverses. This is the
    /// overhead §1 credits direct access with bypassing ("system calls,
    /// file systems, and device drivers"); without it a simulated block
    /// device would be unrealistically cheap relative to user-mode
    /// persistence.
    pub sync_syscall_ns: u64,
    /// How delays are realised (spin for wall-clock benchmarks).
    pub mode: EmulationMode,
}

impl DiskConfig {
    /// The paper's §6.1 parameters: 150 ns + 4 GB/s.
    pub fn paper_default(blocks: u64) -> Self {
        DiskConfig {
            blocks,
            write_latency_ns: 150,
            bandwidth_bytes_per_ns: 4.0,
            sync_syscall_ns: 20_000,
            mode: EmulationMode::Spin,
        }
    }

    /// No delays, for unit tests.
    pub fn for_testing(blocks: u64) -> Self {
        DiskConfig {
            mode: EmulationMode::None,
            sync_syscall_ns: 0,
            ..Self::paper_default(blocks)
        }
    }

    /// Overrides the write latency (Figure 7 sensitivity sweep).
    pub fn with_write_latency_ns(mut self, ns: u64) -> Self {
        self.write_latency_ns = ns;
        self
    }
}

/// Operation counters (plus total modelled device time).
#[derive(Debug, Default)]
pub struct DiskStats {
    /// Block reads served.
    pub reads: AtomicU64,
    /// Block writes into the page cache.
    pub writes: AtomicU64,
    /// Sync operations.
    pub syncs: AtomicU64,
    /// Blocks actually forced to PCM by syncs.
    pub synced_blocks: AtomicU64,
    /// Modelled device time in nanoseconds.
    pub accounted_ns: AtomicU64,
}

/// `pcmdisk.*` registry counters mirroring [`DiskStats`]. A block device
/// is its own machine, so it owns its own [`Telemetry`] registry rather
/// than borrowing an SCM simulator's.
struct DiskMetrics {
    reads: Counter,
    writes: Counter,
    syncs: Counter,
    synced_blocks: Counter,
    accounted_ns: Counter,
}

impl DiskMetrics {
    fn new(telemetry: &Telemetry) -> DiskMetrics {
        DiskMetrics {
            reads: telemetry.counter("pcmdisk.reads", Unit::Count),
            writes: telemetry.counter("pcmdisk.writes", Unit::Count),
            syncs: telemetry.counter("pcmdisk.syncs", Unit::Count),
            synced_blocks: telemetry.counter("pcmdisk.synced_blocks", Unit::Count),
            accounted_ns: telemetry.counter("pcmdisk.accounted_ns", Unit::Nanoseconds),
        }
    }
}

struct DiskState {
    media: Vec<u8>,
    /// Page cache: block index → pending contents.
    dirty: std::collections::HashMap<u64, Vec<u8>>,
}

/// A PCM block device with a volatile page cache. Writes buffer in the
/// cache; [`PcmDisk::sync`] forces dirty blocks to the media with the
/// §6.1 cost model (one latency + bandwidth term per block).
pub struct PcmDisk {
    config: DiskConfig,
    state: Mutex<DiskState>,
    stats: DiskStats,
    telemetry: Telemetry,
    metrics: DiskMetrics,
    /// Optional crash-point schedule; each block forced to media reports a
    /// [`FaultSite::BlockWrite`] primitive.
    faults: RwLock<Option<FaultPlan>>,
}

impl std::fmt::Debug for PcmDisk {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PcmDisk")
            .field("blocks", &self.config.blocks)
            .finish()
    }
}

impl PcmDisk {
    /// Creates a zeroed device.
    pub fn new(config: DiskConfig) -> PcmDisk {
        let telemetry = Telemetry::new();
        let metrics = DiskMetrics::new(&telemetry);
        PcmDisk {
            state: Mutex::new(DiskState {
                media: vec![0; (config.blocks * BLOCK_SIZE) as usize],
                dirty: std::collections::HashMap::new(),
            }),
            config,
            stats: DiskStats::default(),
            telemetry,
            metrics,
            faults: RwLock::new(None),
        }
    }

    /// The device's telemetry registry.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Attaches a crash-point schedule: each block forced to PCM counts as
    /// one `BlockWrite` durability primitive, so a sweep can land a crash
    /// between any two blocks of a sync. Share one [`FaultPlan`] with the
    /// SCM machine to count both devices under one index space.
    pub fn set_fault_plan(&self, plan: FaultPlan) {
        *self.faults.write() = Some(plan);
    }

    /// Detaches the crash-point schedule.
    pub fn clear_fault_plan(&self) {
        *self.faults.write() = None;
    }

    /// Fault hook: `true` means the block write proceeds.
    fn block_write_allowed(&self) -> bool {
        match self.faults.read().as_ref() {
            None => true,
            Some(p) => p.on_primitive(FaultSite::BlockWrite),
        }
    }

    /// Device capacity in blocks.
    pub fn blocks(&self) -> u64 {
        self.config.blocks
    }

    /// The configuration.
    pub fn config(&self) -> &DiskConfig {
        &self.config
    }

    fn delay(&self, ns: u64) {
        self.stats.accounted_ns.fetch_add(ns, Ordering::Relaxed);
        self.metrics.accounted_ns.add(ns);
        if self.config.mode == EmulationMode::Spin {
            let start = Instant::now();
            while (start.elapsed().as_nanos() as u64) < ns {
                std::hint::spin_loop();
            }
        }
    }

    /// Reads block `idx` into `buf` (page cache first).
    ///
    /// # Panics
    /// Panics if `idx` is out of range or `buf` is not one block long.
    pub fn read_block(&self, idx: u64, buf: &mut [u8]) {
        assert!(idx < self.config.blocks, "block {idx} out of range");
        assert_eq!(buf.len() as u64, BLOCK_SIZE);
        self.stats.reads.fetch_add(1, Ordering::Relaxed);
        self.metrics.reads.inc();
        let st = self.state.lock();
        if let Some(d) = st.dirty.get(&idx) {
            buf.copy_from_slice(d);
        } else {
            let off = (idx * BLOCK_SIZE) as usize;
            buf.copy_from_slice(&st.media[off..off + BLOCK_SIZE as usize]);
        }
    }

    /// Writes block `idx` into the page cache (no device delay yet —
    /// durability comes from [`PcmDisk::sync`]).
    ///
    /// # Panics
    /// Panics if `idx` is out of range or `data` is not one block long.
    pub fn write_block(&self, idx: u64, data: &[u8]) {
        assert!(idx < self.config.blocks, "block {idx} out of range");
        assert_eq!(data.len() as u64, BLOCK_SIZE);
        self.stats.writes.fetch_add(1, Ordering::Relaxed);
        self.metrics.writes.inc();
        self.state.lock().dirty.insert(idx, data.to_vec());
    }

    /// Forces every dirty block to the media: per block, one sequential
    /// write-through of `BLOCK_SIZE` bytes ending in a fence
    /// (`write_latency + block/bandwidth` nanoseconds). Returns the number
    /// of blocks synced.
    pub fn sync(&self) -> u64 {
        self.stats.syncs.fetch_add(1, Ordering::Relaxed);
        self.metrics.syncs.inc();
        let dirty: Vec<(u64, Vec<u8>)> = {
            let mut st = self.state.lock();
            st.dirty.drain().collect()
        };
        let n = dirty.len() as u64;
        {
            let mut st = self.state.lock();
            for (idx, data) in &dirty {
                if !self.block_write_allowed() {
                    // Crashed mid-sync: the remaining blocks never reach
                    // PCM (they were page-cache data, lost with the crash).
                    break;
                }
                let off = (*idx * BLOCK_SIZE) as usize;
                st.media[off..off + BLOCK_SIZE as usize].copy_from_slice(data);
            }
        }
        let per_block = self.config.write_latency_ns
            + (BLOCK_SIZE as f64 / self.config.bandwidth_bytes_per_ns) as u64;
        self.delay(self.config.sync_syscall_ns + n * per_block);
        self.stats.synced_blocks.fetch_add(n, Ordering::Relaxed);
        self.metrics.synced_blocks.add(n);
        n
    }

    /// Forces only the dirty blocks selected by `pred` to the media (the
    /// per-file `fsync` path). Returns blocks synced.
    pub fn sync_if(&self, pred: impl Fn(u64) -> bool) -> u64 {
        self.stats.syncs.fetch_add(1, Ordering::Relaxed);
        self.metrics.syncs.inc();
        let dirty: Vec<(u64, Vec<u8>)> = {
            let mut st = self.state.lock();
            let keys: Vec<u64> = st.dirty.keys().copied().filter(|&b| pred(b)).collect();
            keys.into_iter()
                .map(|k| {
                    let v = st.dirty.remove(&k).unwrap();
                    (k, v)
                })
                .collect()
        };
        let n = dirty.len() as u64;
        {
            let mut st = self.state.lock();
            for (idx, data) in &dirty {
                if !self.block_write_allowed() {
                    break;
                }
                let off = (*idx * BLOCK_SIZE) as usize;
                st.media[off..off + BLOCK_SIZE as usize].copy_from_slice(data);
            }
        }
        let per_block = self.config.write_latency_ns
            + (BLOCK_SIZE as f64 / self.config.bandwidth_bytes_per_ns) as u64;
        self.delay(self.config.sync_syscall_ns + n * per_block);
        self.stats.synced_blocks.fetch_add(n, Ordering::Relaxed);
        self.metrics.synced_blocks.add(n);
        n
    }

    /// Drops all unsynced writes — a crash. Detaches any fault plan: the
    /// device now models the rebooted machine.
    pub fn crash(&self) {
        *self.faults.write() = None;
        self.state.lock().dirty.clear();
    }

    /// Number of dirty (unsynced) blocks.
    pub fn dirty_blocks(&self) -> usize {
        self.state.lock().dirty.len()
    }

    /// Snapshot of the counters.
    pub fn stats(&self) -> (u64, u64, u64, u64, u64) {
        (
            self.stats.reads.load(Ordering::Relaxed),
            self.stats.writes.load(Ordering::Relaxed),
            self.stats.syncs.load(Ordering::Relaxed),
            self.stats.synced_blocks.load(Ordering::Relaxed),
            self.stats.accounted_ns.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_roundtrip() {
        let d = PcmDisk::new(DiskConfig::for_testing(16));
        let block = vec![7u8; BLOCK_SIZE as usize];
        d.write_block(3, &block);
        let mut back = vec![0u8; BLOCK_SIZE as usize];
        d.read_block(3, &mut back);
        assert_eq!(back, block);
    }

    #[test]
    fn unsynced_writes_lost_on_crash() {
        let d = PcmDisk::new(DiskConfig::for_testing(16));
        let block = vec![7u8; BLOCK_SIZE as usize];
        d.write_block(3, &block);
        d.crash();
        let mut back = vec![1u8; BLOCK_SIZE as usize];
        d.read_block(3, &mut back);
        assert!(back.iter().all(|&b| b == 0));
    }

    #[test]
    fn synced_writes_survive_crash() {
        let d = PcmDisk::new(DiskConfig::for_testing(16));
        let block = vec![7u8; BLOCK_SIZE as usize];
        d.write_block(3, &block);
        assert_eq!(d.sync(), 1);
        d.crash();
        let mut back = vec![0u8; BLOCK_SIZE as usize];
        d.read_block(3, &mut back);
        assert_eq!(back, block);
    }

    #[test]
    fn sync_cost_scales_with_dirty_blocks() {
        let d = PcmDisk::new(DiskConfig::for_testing(64));
        let block = vec![1u8; BLOCK_SIZE as usize];
        for i in 0..10 {
            d.write_block(i, &block);
        }
        d.sync();
        let (_, _, _, synced, ns) = d.stats();
        assert_eq!(synced, 10);
        // 10 * (150 + 1024) ns
        assert_eq!(ns, 10 * (150 + 1024));
    }

    #[test]
    fn fault_plan_crashes_mid_sync() {
        let d = PcmDisk::new(DiskConfig::for_testing(16));
        let plan = FaultPlan::crash_at(2).with_sites(&[FaultSite::BlockWrite]);
        d.set_fault_plan(plan.clone());
        let block = vec![9u8; BLOCK_SIZE as usize];
        for i in 0..6 {
            d.write_block(i, &block);
        }
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| d.sync()));
        assert!(r.is_err(), "sync must crash at the third block write");
        assert_eq!(plan.fired().map(|f| f.index), Some(2));
        d.crash();
        // Exactly two blocks were forced to PCM before the crash.
        let mut buf = vec![0u8; BLOCK_SIZE as usize];
        let survivors = (0..6u64)
            .filter(|&i| {
                d.read_block(i, &mut buf);
                buf == block
            })
            .count();
        assert_eq!(survivors, 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let d = PcmDisk::new(DiskConfig::for_testing(4));
        d.read_block(4, &mut vec![0u8; BLOCK_SIZE as usize]);
    }
}
