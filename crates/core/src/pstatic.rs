//! `pstatic` variables: named persistent statics in the static region.
//!
//! The paper's `pstatic` keyword places a global variable in the
//! `.persistent` ELF section; it is "initialized once when the program
//! first runs, and then retain[s] their value across invocations" (§3.1,
//! §4.2). Rust has no linker hook for this, so the facade keeps a small
//! persistent *directory* at the start of the static area mapping
//! `name → (offset, size)`; [`crate::Mnemosyne::pstatic`] binds a name,
//! allocating (zero-initialised) space on first use and returning the
//! same fixed address on every later run.
//!
//! Directory updates run inside a durable transaction, so a crash during
//! first binding either registers the variable completely or not at all.

use mnemosyne_region::VAddr;

use crate::{Error, Mnemosyne};

/// Number of pstatic directory slots.
pub const PSTATIC_SLOTS: u64 = 128;

const SLOT_BYTES: u64 = 64;
const NAME_MAX: usize = 40;
const DIR_MAGIC: u64 = u64::from_le_bytes(*b"PSTATICD");

/// Directory layout within the static area:
/// `[magic u64][bump u64][pad 48] [slot 64B] * PSTATIC_SLOTS [var space…]`
const HEADER_BYTES: u64 = 64;

impl Mnemosyne {
    fn static_base(&self) -> VAddr {
        self.regions().static_area().0
    }

    fn var_space(&self) -> (VAddr, u64) {
        let (base, len) = self.regions().static_area();
        let dir_bytes = HEADER_BYTES + PSTATIC_SLOTS * SLOT_BYTES;
        (base.add(dir_bytes), len - dir_bytes)
    }

    /// Initialises the pstatic directory on first run (called by the
    /// builder).
    pub(crate) fn init_pstatic(&self) -> Result<(), Error> {
        let base = self.static_base();
        let pmem = self.pmem_handle();
        if pmem.read_u64(base) == DIR_MAGIC {
            return Ok(());
        }
        // Fresh static area (region files start zeroed): publish bump=0,
        // then the magic.
        pmem.store_u64(base.add(8), 0);
        pmem.flush(base.add(8));
        pmem.fence();
        pmem.store_u64(base, DIR_MAGIC);
        pmem.flush(base);
        pmem.fence();
        Ok(())
    }

    /// Binds the named persistent static variable of `size` bytes,
    /// returning its fixed virtual address. First use allocates
    /// zero-initialised space; later uses (including after crashes and
    /// across program runs) return the same address.
    ///
    /// # Errors
    /// Fails if the name is too long, the size differs from the recorded
    /// one, or directory/static space is exhausted.
    pub fn pstatic(&self, name: &str, size: u64) -> Result<VAddr, Error> {
        if name.is_empty() || name.len() > NAME_MAX {
            return Err(Error::PStatic(format!("invalid name '{name}'")));
        }
        let size = size.max(8).div_ceil(8) * 8;
        let base = self.static_base();
        let pmem = self.pmem_handle();
        let slot_addr = |i: u64| base.add(HEADER_BYTES + i * SLOT_BYTES);

        // Fast path: already bound.
        let mut free_slot = None;
        for i in 0..PSTATIC_SLOTS {
            let a = slot_addr(i);
            let name_len = pmem.read_u64(a) as usize;
            if name_len == 0 {
                if free_slot.is_none() {
                    free_slot = Some(i);
                }
                continue;
            }
            if name_len != name.len() {
                continue;
            }
            let mut buf = vec![0u8; name_len.min(NAME_MAX)];
            pmem.read(a.add(24), &mut buf);
            if buf == name.as_bytes() {
                let off = pmem.read_u64(a.add(8));
                let recorded = pmem.read_u64(a.add(16));
                if recorded != size {
                    return Err(Error::PStatic(format!(
                        "'{name}' recorded with {recorded} bytes, requested {size}"
                    )));
                }
                let (var_base, _) = self.var_space();
                return Ok(var_base.add(off));
            }
        }
        let slot = free_slot.ok_or_else(|| Error::PStatic("directory full".into()))?;

        // Allocate durably and atomically via a transaction.
        let (var_base, var_len) = self.var_space();
        let bump_addr = base.add(8);
        let a = slot_addr(slot);
        let mut th = self.register_thread()?;
        let off = th.atomic(|tx| {
            let off = tx.read_u64(bump_addr)?;
            if off + size > var_len {
                return Err(tx.cancel());
            }
            tx.write_u64(bump_addr, off + size)?;
            tx.write_u64(a.add(8), off)?;
            tx.write_u64(a.add(16), size)?;
            tx.write_bytes(a.add(24), name.as_bytes())?;
            // The name-length word is what makes the slot visible;
            // written last in the buffered write set, applied atomically.
            tx.write_u64(a, name.len() as u64)?;
            Ok(off)
        });
        match off {
            Ok(off) => Ok(var_base.add(off)),
            Err(crate::TxError::Cancelled) => Err(Error::PStatic(format!(
                "static area exhausted binding '{name}'"
            ))),
            Err(e) => Err(e.into()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "mnemo-ps-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&d).ok();
        d
    }

    #[test]
    fn binding_is_stable_and_distinct() {
        let d = dir("bind");
        let m = Mnemosyne::builder(&d).scm_size(32 << 20).open().unwrap();
        let a = m.pstatic("alpha", 16).unwrap();
        let b = m.pstatic("beta", 16).unwrap();
        assert_ne!(a, b);
        assert_eq!(m.pstatic("alpha", 16).unwrap(), a);
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn size_mismatch_rejected() {
        let d = dir("size");
        let m = Mnemosyne::builder(&d).scm_size(32 << 20).open().unwrap();
        m.pstatic("v", 16).unwrap();
        assert!(matches!(m.pstatic("v", 32), Err(Error::PStatic(_))));
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn initialised_zero_on_first_run() {
        let d = dir("zero");
        let m = Mnemosyne::builder(&d).scm_size(32 << 20).open().unwrap();
        let a = m.pstatic("fresh", 32).unwrap();
        let mut buf = [1u8; 32];
        m.pmem_handle().read(a, &mut buf);
        assert_eq!(buf, [0u8; 32]);
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn name_too_long_rejected() {
        let d = dir("long");
        let m = Mnemosyne::builder(&d).scm_size(32 << 20).open().unwrap();
        assert!(m.pstatic(&"x".repeat(NAME_MAX + 1), 8).is_err());
        std::fs::remove_dir_all(&d).ok();
    }
}
