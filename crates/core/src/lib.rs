//! Mnemosyne: lightweight persistent memory.
//!
//! A Rust reproduction of *Mnemosyne: Lightweight Persistent Memory*
//! (Volos, Tack, Swift — ASPLOS 2011). This crate is the user-facing
//! facade over the full stack:
//!
//! | Layer | Crate | Paper section |
//! |---|---|---|
//! | SCM device + performance emulator | `mnemosyne-scm` | §2, §4.1, §6.1 |
//! | persistent regions (kernel + libmnemosyne) | `mnemosyne-region` | §3.1, §4.2 |
//! | tornbit RAWL logs | `mnemosyne-rawl` | §4.4 |
//! | persistent heap (`pmalloc`/`pfree`) | `mnemosyne-pheap` | §4.3 |
//! | durable memory transactions (`atomic {}`) | `mnemosyne-mtm` | §5 |
//!
//! [`Mnemosyne`] boots the whole stack over one simulated machine and a
//! directory of backing files, and adds the `pstatic` facility: named
//! persistent variables in the static region that are initialised once
//! and retain their value across program invocations (§4.2).
//!
//! # Quickstart
//!
//! ```
//! use mnemosyne::Mnemosyne;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! # let dir = std::env::temp_dir().join(format!("mnemo-core-doc-{}", std::process::id()));
//! # std::fs::remove_dir_all(&dir).ok();
//! let m = Mnemosyne::builder(&dir).scm_size(16 << 20).open()?;
//!
//! // A named persistent variable: zero on first run, retained after.
//! let counter = m.pstatic("runs", 8)?;
//! let mut th = m.register_thread()?;
//! th.atomic(|tx| {
//!     let n = tx.read_u64(counter)?;
//!     tx.write_u64(counter, n + 1)?;
//!     Ok(())
//! })?;
//! # drop(th);
//! # m.shutdown()?;
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

use std::path::{Path, PathBuf};
use std::sync::Arc;

pub use mnemosyne_mtm::{
    CkptStats, MtmConfig, MtmRuntime, MtmStats, RecoveryStats, Truncation, Tx, TxAbort, TxError,
    TxThread,
};
pub use mnemosyne_pheap::{HeapConfig, HeapError, PHeap};
pub use mnemosyne_rawl::{CommitRecordLog, LogError, TornbitLog};
pub use mnemosyne_region::{PMem, Region, RegionError, RegionManager, Regions, VAddr};
pub use mnemosyne_scm::{
    crash_payload, CrashPolicy, CrashRequested, EmulationMode, FaultPlan, FaultSite, MemHandle,
    PAddr, ScmConfig, ScmSim, TechPreset,
};

pub use mnemosyne_scm::obs;
pub use mnemosyne_scm::obs::{Telemetry, TelemetrySnapshot};

mod pstatic;
pub mod sweep;
mod updates;

pub use pstatic::PSTATIC_SLOTS;
pub use sweep::{crash_sweep, SweepConfig, SweepFailure, SweepReport};
pub use updates::PCell;

/// Everything that can go wrong when booting or running the stack.
#[derive(Debug)]
pub enum Error {
    /// Region layer failure.
    Region(RegionError),
    /// Heap failure.
    Heap(HeapError),
    /// Transaction system failure.
    Tx(TxError),
    /// Log failure.
    Log(LogError),
    /// Media file I/O failure.
    Io(std::io::Error),
    /// The pstatic directory is full or a variable's size changed.
    PStatic(String),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Region(e) => write!(f, "region error: {e}"),
            Error::Heap(e) => write!(f, "heap error: {e}"),
            Error::Tx(e) => write!(f, "transaction error: {e}"),
            Error::Log(e) => write!(f, "log error: {e}"),
            Error::Io(e) => write!(f, "I/O error: {e}"),
            Error::PStatic(m) => write!(f, "pstatic error: {m}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Region(e) => Some(e),
            Error::Heap(e) => Some(e),
            Error::Tx(e) => Some(e),
            Error::Log(e) => Some(e),
            Error::Io(e) => Some(e),
            Error::PStatic(_) => None,
        }
    }
}

impl From<RegionError> for Error {
    fn from(e: RegionError) -> Self {
        Error::Region(e)
    }
}
impl From<HeapError> for Error {
    fn from(e: HeapError) -> Self {
        Error::Heap(e)
    }
}
impl From<TxError> for Error {
    fn from(e: TxError) -> Self {
        Error::Tx(e)
    }
}
impl From<LogError> for Error {
    fn from(e: LogError) -> Self {
        Error::Log(e)
    }
}
impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

/// Builder for [`Mnemosyne`]; see [`Mnemosyne::builder`].
#[derive(Debug)]
pub struct MnemosyneBuilder {
    dir: PathBuf,
    scm_config: ScmConfig,
    static_len: u64,
    heap_config: HeapConfig,
    mtm_config: MtmConfig,
    image: Option<Vec<u8>>,
    sim: Option<ScmSim>,
    fault_plan: Option<FaultPlan>,
}

impl MnemosyneBuilder {
    fn new(dir: &Path) -> Self {
        MnemosyneBuilder {
            dir: dir.to_path_buf(),
            scm_config: ScmConfig::for_testing(64 << 20),
            static_len: 1 << 16,
            heap_config: HeapConfig::default(),
            mtm_config: MtmConfig::default(),
            image: None,
            sim: None,
            fault_plan: None,
        }
    }

    /// Sets the SCM device size in bytes.
    pub fn scm_size(mut self, bytes: u64) -> Self {
        self.scm_config.size = bytes;
        self
    }

    /// Replaces the whole SCM configuration (latency, bandwidth, mode).
    pub fn scm_config(mut self, config: ScmConfig) -> Self {
        self.scm_config = config;
        self
    }

    /// Sets the delay-emulation mode.
    pub fn mode(mut self, mode: EmulationMode) -> Self {
        self.scm_config.mode = mode;
        self
    }

    /// Sets the extra PCM write latency in nanoseconds (§6.1; the paper's
    /// default is 150 ns).
    pub fn write_latency_ns(mut self, ns: u64) -> Self {
        self.scm_config.write_latency_ns = ns;
        self
    }

    /// Sets the persistent-heap area sizes.
    pub fn heap_sizes(mut self, small: u64, large: u64) -> Self {
        self.heap_config = self.heap_config.with_sizes(small, large);
        self
    }

    /// Sets the persistent-heap shard count (`0` = auto: the
    /// `MNEMOSYNE_HEAP_SHARDS` environment variable if set, otherwise the
    /// machine's available parallelism). Shards are volatile
    /// configuration: a heap written with one count reopens with any
    /// other.
    pub fn heap_shards(mut self, shards: usize) -> Self {
        self.heap_config = self.heap_config.with_shards(shards);
        self
    }

    /// Sets the transaction-log truncation regime (§5).
    pub fn truncation(mut self, t: Truncation) -> Self {
        self.mtm_config.truncation = t;
        self
    }

    /// Sets the maximum concurrent transaction threads.
    pub fn max_threads(mut self, n: usize) -> Self {
        self.mtm_config.max_threads = n;
        self
    }

    /// Sets the per-thread redo-log capacity in words.
    pub fn log_words(mut self, words: u64) -> Self {
        self.mtm_config.log_words = words;
        self
    }

    /// Sets the synchronous-mode log occupancy (percent of capacity)
    /// above which a commit truncates its log. Higher values leave
    /// committed records lingering — useful for building up a known
    /// outstanding-log backlog to measure recovery against.
    pub fn sync_truncate_pct(mut self, pct: u8) -> Self {
        self.mtm_config = self.mtm_config.with_sync_truncate_pct(pct);
        self
    }

    /// Sets the worker-thread count for parallel log replay at open
    /// (`0` = auto: `MNEMOSYNE_RECOVERY_THREADS` or the host
    /// parallelism, clamped to `[1, max_threads]`).
    pub fn recovery_threads(mut self, n: usize) -> Self {
        self.mtm_config = self.mtm_config.with_recovery_threads(n);
        self
    }

    /// Boots from an in-memory media image (what the SCM held at the
    /// instant of a crash) instead of the media file. The device size is
    /// taken from the image — it is the same physical part.
    pub fn from_image(mut self, image: Vec<u8>) -> Self {
        self.scm_config.size = image.len() as u64;
        self.image = Some(image);
        self
    }

    /// Boots over an already-constructed machine instead of creating one.
    ///
    /// Fault-injection harnesses use this to keep a handle on the machine
    /// even when `open()` itself unwinds mid-recovery: the caller's clone
    /// still reaches the (mutated) media afterwards.
    pub fn with_sim(mut self, sim: ScmSim) -> Self {
        self.sim = Some(sim);
        self
    }

    /// Attaches a crash-point schedule to the machine *before* any layer
    /// boots, so the durability primitives issued during recovery itself
    /// are counted — and can be crash targets. See [`FaultPlan`].
    pub fn fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Boots the full stack: SCM machine → region manager →
    /// libmnemosyne regions → persistent heap → transaction runtime
    /// (running every layer's recovery on the way up).
    ///
    /// # Errors
    /// Any layer's recovery or setup failure.
    pub fn open(self) -> Result<Mnemosyne, Error> {
        std::fs::create_dir_all(&self.dir)?;
        let media_path = self.dir.join("scm.img");
        let sim = match (self.sim, &self.image) {
            (Some(sim), _) => sim,
            (None, Some(img)) => ScmSim::from_image(img, self.scm_config.clone()),
            (None, None) if media_path.exists() => {
                // Resuming an existing machine: the device size is fixed
                // by the saved media, whatever the builder asked for.
                let mut config = self.scm_config.clone();
                config.size = std::fs::metadata(&media_path)?.len();
                ScmSim::load(&media_path, config)?
            }
            (None, None) => ScmSim::new(self.scm_config.clone()),
        };
        if let Some(plan) = self.fault_plan {
            sim.set_fault_plan(plan);
        }
        let mgr = RegionManager::boot(&sim, &self.dir)?;
        let (regions, _pmem) = Regions::open(&mgr, self.static_len)?;
        let regions = Arc::new(regions);
        let heap = Arc::new(PHeap::open(&regions, self.heap_config.clone())?);
        let mtm = MtmRuntime::open(&regions, self.mtm_config.clone())?;
        mtm.attach_heap(Arc::clone(&heap));
        let m = Mnemosyne {
            dir: self.dir,
            sim,
            mgr,
            regions,
            heap,
            mtm,
        };
        m.init_pstatic()?;
        Ok(m)
    }
}

/// A booted Mnemosyne stack over one simulated machine.
pub struct Mnemosyne {
    dir: PathBuf,
    sim: ScmSim,
    mgr: RegionManager,
    regions: Arc<Regions>,
    heap: Arc<PHeap>,
    mtm: Arc<MtmRuntime>,
}

impl std::fmt::Debug for Mnemosyne {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mnemosyne")
            .field("dir", &self.dir)
            .field("regions", &self.regions.regions().len())
            .finish()
    }
}

impl Mnemosyne {
    /// Starts configuring a stack whose backing files live in `dir` (the
    /// `MNEMOSYNE_REGION_PATH` analogue).
    pub fn builder(dir: &Path) -> MnemosyneBuilder {
        MnemosyneBuilder::new(dir)
    }

    /// Opens with defaults (64 MB SCM, no delay emulation).
    ///
    /// # Errors
    /// See [`MnemosyneBuilder::open`].
    pub fn open(dir: &Path) -> Result<Mnemosyne, Error> {
        Self::builder(dir).open()
    }

    /// Registers the calling thread with the transaction runtime.
    ///
    /// # Errors
    /// Fails when all thread slots are taken.
    pub fn register_thread(&self) -> Result<TxThread, Error> {
        Ok(self.mtm.register_thread()?)
    }

    /// A fresh per-thread persistent-memory handle (for non-transactional
    /// primitive access).
    pub fn pmem_handle(&self) -> PMem {
        self.regions.pmem_handle()
    }

    /// The region registry.
    pub fn regions(&self) -> &Arc<Regions> {
        &self.regions
    }

    /// The persistent heap.
    pub fn heap(&self) -> &Arc<PHeap> {
        &self.heap
    }

    /// The transaction runtime.
    pub fn mtm(&self) -> &Arc<MtmRuntime> {
        &self.mtm
    }

    /// The kernel-side region manager.
    pub fn manager(&self) -> &RegionManager {
        &self.mgr
    }

    /// The simulated machine.
    pub fn sim(&self) -> &ScmSim {
        &self.sim
    }

    /// The machine's telemetry registry, holding every `scm.*`,
    /// `region.*`, `rawl.*`, `pheap.*` and `mtm.*` metric of this boot.
    /// Note that [`Mnemosyne::crash_reboot`] builds a *new* machine, and
    /// with it a new registry; use
    /// [`Telemetry::process_snapshot`] to aggregate across reboots.
    pub fn telemetry(&self) -> &Telemetry {
        self.sim.telemetry()
    }

    /// The backing-file directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Kills the process and crashes the machine: background threads stop
    /// at the failure point, in-flight writes are resolved by `policy`,
    /// and the post-crash media image is returned together with the
    /// backing-file directory. Boot again with
    /// [`MnemosyneBuilder::from_image`] to exercise recovery.
    pub fn crash(self, policy: CrashPolicy) -> (PathBuf, Vec<u8>) {
        self.mtm.kill();
        self.sim.crash(policy);
        let img = self.sim.image();
        (self.dir.clone(), img)
    }

    /// Crash and immediately reboot with default configuration — the
    /// common test pattern.
    ///
    /// # Errors
    /// Any recovery failure on the way back up.
    pub fn crash_reboot(self, policy: CrashPolicy) -> Result<Mnemosyne, Error> {
        let (dir, img) = self.crash(policy);
        Mnemosyne::builder(&dir).from_image(img).open()
    }

    /// Graceful power-down: checkpoint resident pages to their backing
    /// files and save the media image, so a later [`Mnemosyne::open`] on
    /// the same directory resumes with all data.
    ///
    /// # Errors
    /// Propagates checkpoint/save failures.
    pub fn shutdown(self) -> Result<(), Error> {
        self.mtm.kill();
        self.mgr.checkpoint()?;
        self.sim.shutdown_to(&self.dir.join("scm.img"))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "mnemo-core-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&d).ok();
        d
    }

    #[test]
    fn full_stack_boots_and_counts() {
        let d = dir("boot");
        let m = Mnemosyne::builder(&d).scm_size(32 << 20).open().unwrap();
        let counter = m.pstatic("count", 8).unwrap();
        let mut th = m.register_thread().unwrap();
        for _ in 0..10 {
            th.atomic(|tx| {
                let v = tx.read_u64(counter)?;
                tx.write_u64(counter, v + 1)?;
                Ok(())
            })
            .unwrap();
        }
        assert_eq!(th.atomic(|tx| tx.read_u64(counter)).unwrap(), 10);
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn crash_reboot_preserves_committed_state() {
        let d = dir("crash");
        let m = Mnemosyne::builder(&d).scm_size(32 << 20).open().unwrap();
        let cell = m.pstatic("cell", 8).unwrap();
        let mut th = m.register_thread().unwrap();
        th.atomic(|tx| tx.write_u64(cell, 777)).unwrap();
        drop(th);
        let m2 = m.crash_reboot(CrashPolicy::DropAll).unwrap();
        let cell2 = m2.pstatic("cell", 8).unwrap();
        assert_eq!(cell2, cell, "pstatic variables keep their address");
        let mut th2 = m2.register_thread().unwrap();
        assert_eq!(th2.atomic(|tx| tx.read_u64(cell2)).unwrap(), 777);
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn shutdown_and_reopen_from_files() {
        let d = dir("shutdown");
        {
            let m = Mnemosyne::builder(&d).scm_size(32 << 20).open().unwrap();
            let cell = m.pstatic("v", 8).unwrap();
            let mut th = m.register_thread().unwrap();
            th.atomic(|tx| tx.write_u64(cell, 31415)).unwrap();
            drop(th);
            m.shutdown().unwrap();
        }
        let m2 = Mnemosyne::builder(&d).scm_size(32 << 20).open().unwrap();
        let cell = m2.pstatic("v", 8).unwrap();
        let mut th = m2.register_thread().unwrap();
        assert_eq!(th.atomic(|tx| tx.read_u64(cell)).unwrap(), 31415);
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn heap_and_transactions_compose() {
        let d = dir("compose");
        let m = Mnemosyne::builder(&d).scm_size(32 << 20).open().unwrap();
        let root = m.pstatic("root", 8).unwrap();
        let mut th = m.register_thread().unwrap();
        // Figure 3's pattern: allocate + link, atomically.
        th.atomic(|tx| {
            let node = tx.pmalloc(32)?;
            tx.write_u64(node, 1234)?;
            tx.write_u64(root, node.0)?;
            Ok(())
        })
        .unwrap();
        let v = th
            .atomic(|tx| {
                let node = VAddr(tx.read_u64(root)?);
                tx.read_u64(node)
            })
            .unwrap();
        assert_eq!(v, 1234);
        std::fs::remove_dir_all(&d).ok();
    }
}
