//! Systematic crash-point sweep over the full stack.
//!
//! [`crash_sweep`] answers the question "does recovery hold at *every*
//! instant of this workload?" mechanically: it runs the workload once on a
//! clean machine counting every durability primitive it issues (stores,
//! streaming stores, flushes, fences), then re-executes it on a fresh
//! machine per crash point, killing the machine at the chosen primitive
//! with a [`FaultPlan`], rebooting from the post-crash media image, and
//! running a caller-supplied invariant check against the recovered state.
//!
//! With [`SweepConfig::recovery_points`] set, each crash point is followed
//! by a *double-crash* pass: recovery itself is re-run with a crash
//! scheduled mid-replay (the plan is attached before any layer boots, so
//! the primitives issued while scanning logs and replaying records are
//! crash targets too), after which a clean reboot must still satisfy the
//! invariant.
//!
//! Under the `Virtual` clock with synchronous truncation the primitive
//! counter is deterministic: the same seed, plan, and workload reproduce
//! the same crash point on every run.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;

use crate::{CrashPolicy, CrashRequested, Error, FaultPlan, Mnemosyne, MnemosyneBuilder, ScmSim};

/// Injected crashes unwind with a panic; without this, every one of the
/// hundreds of crash points would print a "thread panicked" report. The
/// wrapping hook swallows [`CrashRequested`] payloads (they are the
/// expected mechanism, not bugs) and defers everything else to the
/// previous hook.
fn silence_injected_crash_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<CrashRequested>().is_none() {
                prev(info);
            }
        }));
    });
}

/// Tuning for [`crash_sweep`].
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Upper bound on distinct workload crash points; the sweep strides
    /// evenly through the primitive count to respect it.
    pub max_points: usize,
    /// For each workload crash point, also crash recovery itself at this
    /// many evenly-spread points (0 disables the double-crash pass).
    pub recovery_points: usize,
    /// How in-flight writes resolve at each injected crash.
    pub policy: CrashPolicy,
    /// Keep the scratch directory of a failing crash point for inspection
    /// (passing points always remove theirs).
    pub keep_failing_dirs: bool,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            max_points: 256,
            recovery_points: 0,
            policy: CrashPolicy::DropAll,
            keep_failing_dirs: true,
        }
    }
}

/// One crash point whose recovery or invariant check failed.
#[derive(Debug)]
pub struct SweepFailure {
    /// Workload primitive index the machine died at
    /// ([`SweepReport::workload_primitives`] for the crash-free baseline).
    pub crash_index: u64,
    /// Recovery primitive index, for double-crash points.
    pub recovery_index: Option<u64>,
    /// Which stage failed: `workload-error`, `workload-panic`,
    /// `recovery-error`, `recovery-panic`, `invariant`, or their
    /// `baseline-`/`recovery-crash-` variants.
    pub stage: &'static str,
    /// Human-readable detail.
    pub detail: String,
}

impl std::fmt::Display for SweepFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "crash point {}", self.crash_index)?;
        if let Some(j) = self.recovery_index {
            write!(f, " (recovery point {j})")?;
        }
        write!(f, ": {} — {}", self.stage, self.detail)
    }
}

/// What a sweep covered and what, if anything, broke.
#[derive(Debug, Default)]
pub struct SweepReport {
    /// Durability primitives the workload issues on a crash-free run.
    pub workload_primitives: u64,
    /// Distinct workload crash points tested.
    pub points_tested: usize,
    /// Points at which the plan actually fired (the rest ran to
    /// completion before their scheduled primitive — possible when
    /// background-thread scheduling shifts the count).
    pub crashes_fired: usize,
    /// Points whose workload completed without the plan firing.
    pub completed_runs: usize,
    /// Double-crash (mid-recovery) points tested.
    pub recovery_points_tested: usize,
    /// Every failed point; empty means the sweep passed.
    pub failures: Vec<SweepFailure>,
}

impl SweepReport {
    /// Whether every crash point recovered and satisfied the invariant.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

impl std::fmt::Display for SweepReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "swept {} crash points over {} primitives ({} fired, {} ran to \
             completion), {} mid-recovery points, {} failures",
            self.points_tested,
            self.workload_primitives,
            self.crashes_fired,
            self.completed_runs,
            self.recovery_points_tested,
            self.failures.len()
        )
    }
}

fn payload_str(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Sweeps injected crashes across a workload and verifies recovery after
/// each one. See the [module docs](self) for the full procedure.
///
/// * `build` configures a stack rooted at the directory it is given; it is
///   called for every boot, so it must be deterministic.
/// * `workload` mutates persistent state; under an injected crash it
///   unwinds (the sweep catches that), so it must not rely on destructors
///   for correctness — exactly the discipline crash-safe code needs
///   anyway.
/// * `check` judges a recovered stack, returning a description of any
///   invariant violation. It must accept *any* crash-consistent state:
///   every prefix of the workload's committed transactions is legal.
///
/// # Errors
/// Fails fast on harness errors (scratch-dir I/O, a clean boot failing, a
/// crash-free workload run failing). Crash-point failures do **not**
/// short-circuit; they are collected in [`SweepReport::failures`].
pub fn crash_sweep<B, W, C>(
    base: &Path,
    config: &SweepConfig,
    build: B,
    workload: W,
    check: C,
) -> Result<SweepReport, Error>
where
    B: Fn(&Path) -> MnemosyneBuilder,
    W: Fn(&Mnemosyne) -> Result<(), Error>,
    C: Fn(&Mnemosyne) -> Result<(), String>,
{
    silence_injected_crash_panics();
    std::fs::create_dir_all(base)?;
    let mut report = SweepReport::default();

    // Enumeration pass: count the workload's durability primitives, then
    // make sure power loss *after* a completed workload recovers — if the
    // baseline is broken, per-point results would be noise.
    let count_dir = base.join("count");
    std::fs::remove_dir_all(&count_dir).ok();
    let m = build(&count_dir).open()?;
    let scm_config = m.sim().config().clone();
    let counter = FaultPlan::count_only();
    m.sim().set_fault_plan(counter.clone());
    workload(&m)?;
    let total = counter.primitives();
    m.sim().clear_fault_plan();
    report.workload_primitives = total;
    let (dir, img) = m.crash(config.policy);
    match build(&dir).from_image(img).open() {
        Ok(m2) => {
            if let Err(msg) = check(&m2) {
                report.failures.push(SweepFailure {
                    crash_index: total,
                    recovery_index: None,
                    stage: "baseline-invariant",
                    detail: msg,
                });
            }
        }
        Err(e) => report.failures.push(SweepFailure {
            crash_index: total,
            recovery_index: None,
            stage: "baseline-recovery",
            detail: e.to_string(),
        }),
    }
    std::fs::remove_dir_all(&count_dir).ok();

    let stride = (total / config.max_points.max(1) as u64).max(1);
    let mut idx = 0u64;
    while idx < total {
        let before = report.failures.len();
        let run_dir = base.join(format!("p{idx}"));
        std::fs::remove_dir_all(&run_dir).ok();
        run_point(
            &run_dir,
            idx,
            config,
            &scm_config,
            &build,
            &workload,
            &check,
            &mut report,
        )?;
        let failed = report.failures.len() > before;
        if !failed || !config.keep_failing_dirs {
            std::fs::remove_dir_all(&run_dir).ok();
        }
        idx += stride;
    }
    Ok(report)
}

/// One crash point: boot fresh, die at primitive `idx`, reboot, check —
/// then optionally crash recovery itself.
#[allow(clippy::too_many_arguments)]
fn run_point<B, W, C>(
    run_dir: &Path,
    idx: u64,
    config: &SweepConfig,
    scm_config: &crate::ScmConfig,
    build: &B,
    workload: &W,
    check: &C,
    report: &mut SweepReport,
) -> Result<(), Error>
where
    B: Fn(&Path) -> MnemosyneBuilder,
    W: Fn(&Mnemosyne) -> Result<(), Error>,
    C: Fn(&Mnemosyne) -> Result<(), String>,
{
    let m = build(run_dir).open()?;
    let plan = FaultPlan::crash_at(idx);
    m.sim().set_fault_plan(plan.clone());
    let run = catch_unwind(AssertUnwindSafe(|| workload(&m)));
    report.points_tested += 1;
    match &run {
        // A background thread (log manager) can absorb the crash while the
        // workload thread completes; `fired` is the ground truth.
        Ok(Ok(())) | Ok(Err(_)) if plan.fired().is_some() => report.crashes_fired += 1,
        Ok(Ok(())) => report.completed_runs += 1,
        Ok(Err(e)) => {
            report.failures.push(SweepFailure {
                crash_index: idx,
                recovery_index: None,
                stage: "workload-error",
                detail: e.to_string(),
            });
            return Ok(());
        }
        Err(payload) => {
            if crate::crash_payload(&**payload).is_some() {
                report.crashes_fired += 1;
            } else {
                report.failures.push(SweepFailure {
                    crash_index: idx,
                    recovery_index: None,
                    stage: "workload-panic",
                    detail: payload_str(&**payload),
                });
                return Ok(());
            }
        }
    }

    let (dir, img) = m.crash(config.policy);
    let reboot = catch_unwind(AssertUnwindSafe(|| {
        build(&dir).from_image(img.clone()).open()
    }));
    let mut recovered = false;
    match reboot {
        Ok(Ok(m2)) => {
            recovered = true;
            if let Err(msg) = check(&m2) {
                report.failures.push(SweepFailure {
                    crash_index: idx,
                    recovery_index: None,
                    stage: "invariant",
                    detail: msg,
                });
            }
        }
        // A bare crash leaves no corruption, so recovery returning a typed
        // error — or worse, panicking — is a hardening bug, not noise.
        Ok(Err(e)) => report.failures.push(SweepFailure {
            crash_index: idx,
            recovery_index: None,
            stage: "recovery-error",
            detail: e.to_string(),
        }),
        Err(payload) => report.failures.push(SweepFailure {
            crash_index: idx,
            recovery_index: None,
            stage: "recovery-panic",
            detail: payload_str(&*payload),
        }),
    }

    if config.recovery_points == 0 || !recovered {
        return Ok(());
    }

    // Double-crash pass: enumerate recovery's own primitives from this
    // image, then kill recovery mid-replay at evenly-spread points. The
    // sweep keeps its own handle on the machine so the mutated media is
    // still reachable after `open()` unwinds.
    let rcount = FaultPlan::count_only();
    let m2 = match build(&dir)
        .from_image(img.clone())
        .fault_plan(rcount.clone())
        .open()
    {
        Ok(m2) => m2,
        Err(e) => {
            report.failures.push(SweepFailure {
                crash_index: idx,
                recovery_index: None,
                stage: "recovery-error",
                detail: format!("recovery failed on re-run: {e}"),
            });
            return Ok(());
        }
    };
    let r_total = rcount.primitives();
    m2.sim().clear_fault_plan();
    drop(m2);

    for k in 0..config.recovery_points {
        let j = r_total * (2 * k as u64 + 1) / (2 * config.recovery_points as u64);
        let sim = ScmSim::from_image(&img, scm_config.clone());
        let rplan = FaultPlan::crash_at(j);
        sim.set_fault_plan(rplan.clone());
        let attempt = catch_unwind(AssertUnwindSafe(|| {
            build(&dir).with_sim(sim.clone()).open()
        }));
        report.recovery_points_tested += 1;
        let img2 = match attempt {
            Ok(Ok(m3)) => m3.crash(config.policy).1,
            Ok(Err(e)) if rplan.fired().is_none() => {
                report.failures.push(SweepFailure {
                    crash_index: idx,
                    recovery_index: Some(j),
                    stage: "recovery-crash-error",
                    detail: e.to_string(),
                });
                continue;
            }
            Err(ref payload) if crate::crash_payload(&**payload).is_none() => {
                report.failures.push(SweepFailure {
                    crash_index: idx,
                    recovery_index: Some(j),
                    stage: "recovery-crash-panic",
                    detail: payload_str(&**payload),
                });
                continue;
            }
            // The plan fired mid-recovery (typed error or unwind): the
            // machine is dead, but our clone still reaches the media.
            _ => {
                sim.crash(config.policy);
                sim.image()
            }
        };
        match catch_unwind(AssertUnwindSafe(|| build(&dir).from_image(img2).open())) {
            Ok(Ok(m4)) => {
                if let Err(msg) = check(&m4) {
                    report.failures.push(SweepFailure {
                        crash_index: idx,
                        recovery_index: Some(j),
                        stage: "invariant",
                        detail: msg,
                    });
                }
            }
            Ok(Err(e)) => report.failures.push(SweepFailure {
                crash_index: idx,
                recovery_index: Some(j),
                stage: "recovery-error",
                detail: e.to_string(),
            }),
            Err(payload) => report.failures.push(SweepFailure {
                crash_index: idx,
                recovery_index: Some(j),
                stage: "recovery-panic",
                detail: payload_str(&*payload),
            }),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "mnemo-sweep-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&d).ok();
        d
    }

    /// A small monotone-counter workload: each transaction bumps the
    /// counter by exactly 1, so any recovered value in `0..=N` is legal
    /// and anything else is corruption.
    fn bump_workload(m: &Mnemosyne, bumps: u64) -> Result<(), Error> {
        let cell = m.pstatic("sweepcell", 8)?;
        let mut th = m.register_thread()?;
        for _ in 0..bumps {
            th.atomic(|tx| {
                let v = tx.read_u64(cell)?;
                tx.write_u64(cell, v + 1)?;
                Ok(())
            })?;
        }
        Ok(())
    }

    fn check_counter(m: &Mnemosyne, max: u64) -> Result<(), String> {
        let cell = m.pstatic("sweepcell", 8).map_err(|e| e.to_string())?;
        let mut th = m.register_thread().map_err(|e| e.to_string())?;
        let v = th
            .atomic(|tx| tx.read_u64(cell))
            .map_err(|e| e.to_string())?;
        if v <= max {
            Ok(())
        } else {
            Err(format!(
                "counter {v} exceeds the {max} increments ever made"
            ))
        }
    }

    #[test]
    fn small_sweep_passes_and_is_deterministic() {
        let d = dir("small");
        let cfg = SweepConfig {
            max_points: 12,
            recovery_points: 0,
            ..SweepConfig::default()
        };
        let run = |base: &Path| {
            crash_sweep(
                base,
                &cfg,
                |p| {
                    Mnemosyne::builder(p)
                        .scm_config(crate::ScmConfig::virtual_clock(8 << 20))
                        .truncation(crate::Truncation::Sync)
                },
                |m| bump_workload(m, 3),
                |m| check_counter(m, 3),
            )
            .unwrap()
        };
        let r1 = run(&d.join("a"));
        assert!(r1.passed(), "failures: {:?}", r1.failures);
        assert!(r1.points_tested >= 10);
        assert!(r1.crashes_fired > 0);
        let r2 = run(&d.join("b"));
        assert_eq!(r1.workload_primitives, r2.workload_primitives);
        assert_eq!(r1.crashes_fired, r2.crashes_fired);
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn sweep_with_recovery_crashes_passes() {
        let d = dir("double");
        let cfg = SweepConfig {
            max_points: 4,
            recovery_points: 2,
            ..SweepConfig::default()
        };
        let report = crash_sweep(
            &d,
            &cfg,
            |p| {
                Mnemosyne::builder(p)
                    .scm_config(crate::ScmConfig::virtual_clock(8 << 20))
                    .truncation(crate::Truncation::Sync)
            },
            |m| bump_workload(m, 2),
            |m| check_counter(m, 2),
        )
        .unwrap();
        assert!(report.passed(), "failures: {:?}", report.failures);
        assert!(report.recovery_points_tested > 0);
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn sweep_surfaces_invariant_violations() {
        // A checker that rejects everything must produce a failure per
        // reboot, proving the sweep doesn't swallow violations.
        let d = dir("viol");
        let cfg = SweepConfig {
            max_points: 2,
            recovery_points: 0,
            keep_failing_dirs: false,
            ..SweepConfig::default()
        };
        let report = crash_sweep(
            &d,
            &cfg,
            |p| Mnemosyne::builder(p).scm_config(crate::ScmConfig::virtual_clock(8 << 20)),
            |m| bump_workload(m, 1),
            |_| Err("always unhappy".to_string()),
        )
        .unwrap();
        assert!(!report.passed());
        assert!(report
            .failures
            .iter()
            .any(|f| f.stage.contains("invariant")));
        // No scratch dirs left behind.
        let leftovers: Vec<_> = std::fs::read_dir(&d)
            .map(|it| it.filter_map(|e| e.ok()).collect())
            .unwrap_or_default();
        assert!(
            leftovers.is_empty(),
            "scratch dirs left behind: {leftovers:?}"
        );
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn report_display_is_informative() {
        let r = SweepReport {
            workload_primitives: 100,
            points_tested: 10,
            crashes_fired: 9,
            completed_runs: 1,
            recovery_points_tested: 0,
            failures: vec![],
        };
        let s = r.to_string();
        assert!(s.contains("10 crash points"));
        assert!(s.contains("100 primitives"));
    }
}
