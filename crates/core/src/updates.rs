//! The lighter consistency methods of Table 2: single-variable updates
//! and shadow updates.
//!
//! §3.2 ranks four consistent-update disciplines by flexibility. Durable
//! transactions (the most general) live in `mnemosyne-mtm`; append
//! updates in `mnemosyne-rawl`. This module provides first-class helpers
//! for the remaining two:
//!
//! * **single variable update** — [`PCell`]: one atomically-written
//!   64-bit persistent word ("useful for recording when a program has
//!   been initialized or for storing statistics such as counters");
//! * **shadow update** — [`Mnemosyne::shadow_update`]: write a fresh copy
//!   of the data, fence, then swing one reference atomically ("works
//!   best for tree-like structures where data is reachable through a
//!   single pointer, and must allocate new memory for every update").

use mnemosyne_region::{PMem, VAddr};

use crate::{Error, Mnemosyne};

/// A persistent 64-bit cell updated with single atomic writes — the
/// cheapest consistency method of Table 2 (zero ordering constraints;
/// totally ordered with respect to other single-variable updates).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PCell {
    addr: VAddr,
}

impl PCell {
    /// Wraps an existing word-aligned persistent address (e.g. from
    /// [`Mnemosyne::pstatic`]).
    ///
    /// # Panics
    /// Panics if `addr` is not a word-aligned persistent address.
    pub fn at(addr: VAddr) -> PCell {
        assert!(addr.is_persistent() && addr.is_word_aligned());
        PCell { addr }
    }

    /// The cell's address.
    pub fn addr(&self) -> VAddr {
        self.addr
    }

    /// Reads the cell.
    pub fn get(&self, pmem: &PMem) -> u64 {
        pmem.read_u64(self.addr)
    }

    /// Durably writes the cell: one atomic streaming store plus one fence.
    pub fn set(&self, pmem: &PMem, value: u64) {
        pmem.wtstore_u64(self.addr, value);
        pmem.fence();
    }

    /// Durable read-modify-write (NOT atomic against concurrent writers —
    /// single-variable updates order writes, they do not arbitrate them;
    /// use a transaction for shared counters).
    pub fn update(&self, pmem: &PMem, f: impl FnOnce(u64) -> u64) -> u64 {
        let v = f(self.get(pmem));
        self.set(pmem, v);
        v
    }
}

impl Mnemosyne {
    /// Binds a named persistent [`PCell`].
    ///
    /// # Errors
    /// As [`Mnemosyne::pstatic`].
    pub fn pcell(&self, name: &str) -> Result<PCell, Error> {
        Ok(PCell::at(self.pstatic(name, 8)?))
    }

    /// Performs a **shadow update** of the object referenced by the
    /// persistent pointer cell `ptr_cell` (Table 2 method 3):
    ///
    /// 1. allocate a fresh block of `size` bytes;
    /// 2. let `init` write the new contents through the given [`PMem`];
    /// 3. flush the new data and fence (the one ordering constraint);
    /// 4. atomically swing `ptr_cell` to the new block (durable single
    ///    word);
    /// 5. free the old block, if any.
    ///
    /// Returns the new block's address. A crash before step 4 leaves the
    /// old object intact (the new block is reclaimed as garbage — §3.2:
    /// "after a failure, a program must find and release unreferenced new
    /// data"; our heap-logged allocation bounds that garbage to one
    /// block). A crash after step 4 leaves the new object installed.
    ///
    /// # Errors
    /// Propagates allocation failures.
    pub fn shadow_update(
        &self,
        ptr_cell: VAddr,
        size: u64,
        init: impl FnOnce(&PMem, VAddr),
    ) -> Result<VAddr, Error> {
        let pmem = self.pmem_handle();
        let heap = self.heap();
        let old = VAddr(pmem.read_u64(ptr_cell));
        let fresh = heap.pmalloc_unanchored(size)?;
        init(&pmem, fresh);
        pmem.flush_range(fresh, size);
        pmem.fence(); // new data stable before the reference moves
        pmem.wtstore_u64(ptr_cell, fresh.0);
        pmem.fence();
        if !old.is_null() {
            heap.pfree_addr(old)?;
        }
        Ok(fresh)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CrashPolicy;
    use std::path::PathBuf;

    fn dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "mnemo-upd-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&d).ok();
        d
    }

    #[test]
    fn pcell_survives_crash() {
        let d = dir("cell");
        let m = Mnemosyne::builder(&d).scm_size(32 << 20).open().unwrap();
        let c = m.pcell("counter").unwrap();
        let pmem = m.pmem_handle();
        assert_eq!(c.get(&pmem), 0);
        c.set(&pmem, 41);
        c.update(&pmem, |v| v + 1);
        drop(pmem);
        let m2 = m.crash_reboot(CrashPolicy::DropAll).unwrap();
        let c2 = m2.pcell("counter").unwrap();
        assert_eq!(c2.get(&m2.pmem_handle()), 42);
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn shadow_update_replaces_and_frees() {
        let d = dir("shadow");
        let m = Mnemosyne::builder(&d).scm_size(32 << 20).open().unwrap();
        let cell = m.pstatic("doc", 8).unwrap();
        let v1 = m
            .shadow_update(cell, 64, |pmem, a| pmem.store(a, b"version one"))
            .unwrap();
        let v2 = m
            .shadow_update(cell, 64, |pmem, a| pmem.store(a, b"version two"))
            .unwrap();
        assert_ne!(v1, v2);
        let pmem = m.pmem_handle();
        assert_eq!(pmem.read_u64(cell), v2.0);
        let mut buf = [0u8; 11];
        pmem.read(v2, &mut buf);
        assert_eq!(&buf, b"version two");
        // The old version was freed and its space is reusable.
        assert_eq!(m.heap().usable_size(v1), None);
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn shadow_update_is_crash_atomic() {
        let d = dir("shadow-crash");
        let m = Mnemosyne::builder(&d).scm_size(32 << 20).open().unwrap();
        let cell = m.pstatic("doc", 8).unwrap();
        m.shadow_update(cell, 256, |pmem, a| pmem.store(a, &[1u8; 256]))
            .unwrap();
        m.shadow_update(cell, 256, |pmem, a| pmem.store(a, &[2u8; 256]))
            .unwrap();
        // Crash adversarially: the reference must point at a fully
        // written version (the fence ordered data before pointer).
        let m2 = m.crash_reboot(CrashPolicy::random(9)).unwrap();
        let cell = m2.pstatic("doc", 8).unwrap();
        let pmem = m2.pmem_handle();
        let target = VAddr(pmem.read_u64(cell));
        assert!(!target.is_null());
        let mut buf = [0u8; 256];
        pmem.read(target, &mut buf);
        assert!(
            buf == [1u8; 256] || buf == [2u8; 256],
            "shadow update exposed a torn object"
        );
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    #[should_panic]
    fn pcell_rejects_volatile_address() {
        PCell::at(VAddr(42));
    }
}
